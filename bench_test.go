// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md and micro
// benchmarks of the substrate.
//
// The artifact benchmarks run at a reduced scale (24-32 ranks, a subset of
// the message grid) so the whole suite finishes in minutes; the cmd tool
// `mpicollperf reproduce` regenerates the artifacts at the paper's full
// scale. Where a benchmark has a quality outcome (selection degradation,
// model error), it is attached to the benchmark via b.ReportMetric, so
// `go test -bench=.` doubles as a regression check on the reproduction's
// headline numbers.
package mpicollperf

import (
	"math"
	"sync"
	"testing"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/decision"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/hockney"
	"mpicollperf/internal/model"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/selection"
	"mpicollperf/internal/simnet"
	"mpicollperf/internal/tables"
)

// benchScale is the reduced experiment scale used by the benchmarks.
const (
	benchNodes = 32
	benchProcs = 32
	benchEstP  = 16
)

var benchSizes = []int{8192, 32768, 131072, 524288, 2 << 20}

func benchSettings() experiment.Settings {
	return experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1}
}

func benchProfile(b *testing.B, name string) cluster.Profile {
	b.Helper()
	base, err := cluster.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := base.WithNodes(benchNodes)
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

// calibration cache: the offline phase is shared across benchmarks.
var (
	calOnce   sync.Once
	calModels map[string]model.BcastModels
	calErr    error
)

func calibrated(b *testing.B, name string) model.BcastModels {
	b.Helper()
	calOnce.Do(func() {
		calModels = make(map[string]model.BcastModels, 2)
		for _, cn := range []string{"grisou", "gros"} {
			base, err := cluster.ByName(cn)
			if err != nil {
				calErr = err
				return
			}
			pr, err := base.WithNodes(benchNodes)
			if err != nil {
				calErr = err
				return
			}
			bm, _, err := estimate.Models(pr, estimate.AlphaBetaConfig{
				Procs:    benchEstP,
				Sizes:    benchSizes,
				Settings: benchSettings(),
			})
			if err != nil {
				calErr = err
				return
			}
			calModels[cn] = bm
		}
	})
	if calErr != nil {
		b.Fatal(calErr)
	}
	return calModels[name]
}

// ------------------------------------------------------------- Fig. 1

// BenchmarkFig1TraditionalVsMeasured regenerates Fig. 1: the traditional
// models' prediction error against the measured binary and binomial
// curves. The reported trad_mean_rel_err metric is the figure's message —
// the textbook approach misses by a large factor.
func BenchmarkFig1TraditionalVsMeasured(b *testing.B) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	for i := 0; i < b.N; i++ {
		fig, err := tables.GenerateFig1(pr, benchProcs, benchSizes, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		var sumErr float64
		var n int
		for _, r := range fig.Rows {
			sumErr += math.Abs(r.TradBinary/r.MeasBinary - 1)
			sumErr += math.Abs(r.TradBinomial/r.MeasBinomial - 1)
			n += 2
		}
		b.ReportMetric(sumErr/float64(n), "trad_mean_rel_err")
	}
}

// ------------------------------------------------------------- Table 1

func benchmarkTable1(b *testing.B, name string) {
	b.ReportAllocs()
	pr := benchProfile(b, name)
	for i := 0; i < b.N; i++ {
		res, err := estimate.Gamma(pr, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Gamma.At(7), "gamma7")
	}
}

// BenchmarkTable1GammaGrisou regenerates the Grisou column of Table 1
// (paper: γ(7) = 1.540).
func BenchmarkTable1GammaGrisou(b *testing.B) { benchmarkTable1(b, "grisou") }

// BenchmarkTable1GammaGros regenerates the Gros column of Table 1
// (paper: γ(7) = 1.424).
func BenchmarkTable1GammaGros(b *testing.B) { benchmarkTable1(b, "gros") }

// ------------------------------------------------------------- Table 2

// BenchmarkTable2AlphaBeta regenerates the per-algorithm α/β estimation
// (Table 2) for one algorithm on Grisou; the reported metrics are the
// fitted parameters.
func BenchmarkTable2AlphaBeta(b *testing.B) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	gr, err := estimate.Gamma(pr, benchSettings())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := estimate.AlphaBeta(pr, coll.BcastBinomial, gr.Gamma, estimate.AlphaBetaConfig{
			Procs:    benchEstP,
			Sizes:    benchSizes,
			Settings: benchSettings(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Params.Alpha*1e6, "alpha_us")
		b.ReportMetric(res.Params.Beta*1e9, "beta_ns_per_B")
	}
}

// ----------------------------------------------------- Fig. 5 / Table 3

func benchmarkSelection(b *testing.B, name string) {
	b.ReportAllocs()
	pr := benchProfile(b, name)
	sel := selection.ModelBased{Models: calibrated(b, name)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := tables.GenerateTable3(pr, sel, benchProcs, benchSizes, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		var ompiWorst float64
		for _, r := range tab.Rows {
			if r.OMPIDegradation > ompiWorst {
				ompiWorst = r.OMPIDegradation
			}
		}
		b.ReportMetric(tab.MaxModelDegradation(), "model_worst_degr_pct")
		b.ReportMetric(ompiWorst, "ompi_worst_degr_pct")
	}
}

// BenchmarkTable3SelectionGrisou regenerates Table 3 (left half) at bench
// scale: model-based vs Open MPI selection degradation on Grisou (paper:
// model ≤ 3%, Open MPI up to 160%).
func BenchmarkTable3SelectionGrisou(b *testing.B) { benchmarkSelection(b, "grisou") }

// BenchmarkTable3SelectionGros regenerates Table 3 (right half) at bench
// scale on Gros (paper: model ≤ 10%, Open MPI up to 7297%).
func BenchmarkTable3SelectionGros(b *testing.B) { benchmarkSelection(b, "gros") }

// BenchmarkFig5SelectionCurves regenerates one Fig. 5 panel (time vs
// message size for the three selectors).
func BenchmarkFig5SelectionCurves(b *testing.B) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	sel := selection.ModelBased{Models: calibrated(b, "grisou")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panel, err := tables.GenerateFig5Panel(pr, sel, benchProcs, benchSizes, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		var modelSum, bestSum float64
		for _, pt := range panel.Points {
			modelSum += pt.ModelTime
			bestSum += pt.BestTime
		}
		b.ReportMetric(modelSum/bestSum, "model_vs_best_ratio")
	}
}

// --------------------------------------------- §5.3 efficiency claim

// BenchmarkModelBasedSelectionCost measures the run-time cost of one
// model-based selection — the paper's claim that the decision is as cheap
// as a hard-coded rule. Expect a few hundred nanoseconds.
func BenchmarkModelBasedSelectionCost(b *testing.B) {
	b.ReportAllocs()
	sel := selection.ModelBased{Models: calibrated(b, "grisou")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(90, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenMPIFixedDecisionCost is the baseline decision cost.
func BenchmarkOpenMPIFixedDecisionCost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = selection.OpenMPIFixed(90, 1<<20)
	}
}

// BenchmarkCompiledTableLookupCost measures the compiled decision table —
// the zero-floating-point deployment form of the model-based selector.
func BenchmarkCompiledTableLookupCost(b *testing.B) {
	b.ReportAllocs()
	bm := calibrated(b, "grisou")
	tab, err := decision.Compile(bm, decision.CompileConfig{MaxProcs: 96})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Lookup(90, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSelection regenerates the beyond-broadcast extension
// table (allgather/allreduce/alltoall/reduce/gather/scatter/
// reduce-scatter) and reports the worst model-pick degradation.
func BenchmarkExtensionSelection(b *testing.B) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	for i := 0; i < b.N; i++ {
		tab, err := tables.GenerateExtTable(pr, benchEstP, []int{4096, 262144}, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.MaxDegradation(), "ext_worst_degr_pct")
	}
}

// BenchmarkVanDeGeijnVsBinomial compares MPICH's large-message broadcast
// against the unsegmented binomial tree (time ratio < 1 means van de
// Geijn wins, which it must at this size).
func BenchmarkVanDeGeijnVsBinomial(b *testing.B) {
	b.ReportAllocs()
	cfg := cluster.Grisou().Net
	cfg.Nodes = benchNodes
	const m = 8 << 20
	for i := 0; i < b.N; i++ {
		vdg, err := mpi.Run(cfg, benchNodes, func(p *mpi.Proc) error {
			coll.BcastVanDeGeijn(p, coll.VanDeGeijnRing, 0, coll.Synthetic(m))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		bin, err := mpi.Run(cfg, benchNodes, func(p *mpi.Proc) error {
			coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(m), 0)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(vdg.MakeSpan/bin.MakeSpan, "vdg_vs_binomial_ratio")
	}
}

// ----------------------------------------------------------- Ablations

// ablationWorstDegradation runs the Table 3 selection with an alternative
// model set and reports the worst degradation.
func ablationWorstDegradation(b *testing.B, bm model.BcastModels) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	sel := selection.ModelBased{Models: bm}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := tables.GenerateTable3(pr, sel, benchProcs, benchSizes, benchSettings())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.MaxModelDegradation(), "worst_degr_pct")
	}
}

// BenchmarkAblationPointToPointParams removes the paper's second
// innovation: every algorithm shares the same ping-pong-estimated α/β
// instead of per-algorithm fitted parameters.
func BenchmarkAblationPointToPointParams(b *testing.B) {
	pr := benchProfile(b, "grisou")
	full := calibrated(b, "grisou")
	pp, err := hockney.EstimatePingPong(pr, []int{0, 8192, 131072, 1 << 20}, benchSettings())
	if err != nil {
		b.Fatal(err)
	}
	bm := model.BcastModels{
		Cluster: full.Cluster,
		SegSize: full.SegSize,
		Gamma:   full.Gamma,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney),
	}
	for _, alg := range coll.BcastAlgorithms() {
		bm.Params[alg] = model.Hockney{Alpha: pp.Alpha, Beta: pp.Beta}
	}
	ablationWorstDegradation(b, bm)
}

// BenchmarkAblationNoGamma removes the paper's first innovation: γ ≡ 1
// turns the implementation-derived models back into textbook shapes (the
// per-algorithm parameters are re-fitted under the crippled model so the
// comparison is fair).
func BenchmarkAblationNoGamma(b *testing.B) {
	pr := benchProfile(b, "grisou")
	unit := model.UnitGamma()
	bm := model.BcastModels{
		Cluster: pr.Name,
		SegSize: pr.SegmentSize,
		Gamma:   unit,
		Params:  make(map[coll.BcastAlgorithm]model.Hockney),
	}
	for _, alg := range coll.BcastAlgorithms() {
		res, err := estimate.AlphaBeta(pr, alg, unit, estimate.AlphaBetaConfig{
			Procs:    benchEstP,
			Sizes:    benchSizes,
			Settings: benchSettings(),
		})
		if err != nil {
			b.Fatal(err)
		}
		bm.Params[alg] = res.Params
	}
	ablationWorstDegradation(b, bm)
}

// BenchmarkAblationPaperBinomialFormula compares the paper's Formula 6
// against this repository's fill/steady-state binomial model: both predict
// the measured binomial broadcast across the grid, and the reported
// metrics are their mean relative errors.
func BenchmarkAblationPaperBinomialFormula(b *testing.B) {
	b.ReportAllocs()
	pr := benchProfile(b, "grisou")
	bm := calibrated(b, "grisou")
	par := bm.Params[coll.BcastBinomial]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var oursSum, paperSum float64
		for _, m := range benchSizes {
			meas, err := experiment.MeasureBcast(pr, benchProcs, coll.BcastBinomial, m, pr.SegmentSize, benchSettings())
			if err != nil {
				b.Fatal(err)
			}
			ours := model.Predict(coll.BcastBinomial, benchProcs, m, pr.SegmentSize, par, bm.Gamma)
			pa, pb := model.PaperBinomialCoefficients(benchProcs, m, pr.SegmentSize, bm.Gamma)
			paper := pa*par.Alpha + pb*par.Beta
			oursSum += math.Abs(ours/meas.Mean - 1)
			paperSum += math.Abs(paper/meas.Mean - 1)
		}
		n := float64(len(benchSizes))
		b.ReportMetric(oursSum/n, "fill_steady_rel_err")
		b.ReportMetric(paperSum/n, "formula6_rel_err")
	}
}

// BenchmarkAblationSegmentSize sweeps the segment size the paper holds
// fixed at 8 KB and reports the best-algorithm time at each m_s for a 1 MB
// broadcast — the knob the paper declares out of scope.
func BenchmarkAblationSegmentSize(b *testing.B) {
	pr := benchProfile(b, "grisou")
	const m = 1 << 20
	for _, seg := range []int{1024, 8192, 65536} {
		seg := seg
		b.Run(sizeName(seg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				best := math.Inf(1)
				for _, alg := range coll.BcastAlgorithms() {
					meas, err := experiment.MeasureBcast(pr, benchProcs, alg, m, seg, benchSettings())
					if err != nil {
						b.Fatal(err)
					}
					if meas.Mean < best {
						best = meas.Mean
					}
				}
				b.ReportMetric(best*1e3, "best_ms")
			}
		})
	}
}

func sizeName(seg int) string {
	switch {
	case seg >= 1<<20:
		return "seg_1MB"
	case seg >= 1024:
		return "seg_" + itoa(seg/1024) + "KB"
	default:
		return "seg_" + itoa(seg) + "B"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// ----------------------------------------------------- Substrate micro

// BenchmarkSimulatorTransmit measures the raw event rate of the network
// simulator.
func BenchmarkSimulatorTransmit(b *testing.B) {
	b.ReportAllocs()
	net, err := simnet.New(cluster.Grisou().Net)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Transmit(0, 1+i%89, 8192, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimePingPong measures the cost of one simulated
// send/receive pair through the full runtime (goroutine lockstep
// included).
func BenchmarkRuntimePingPong(b *testing.B) {
	b.ReportAllocs()
	cfg := cluster.Grisou().Net
	cfg.Nodes = 2
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(cfg, 2, func(p *mpi.Proc) error {
			if p.Rank() == 0 {
				p.Send(1, 0, nil, 8192)
				p.Recv(1, 1, nil)
			} else {
				p.Recv(0, 0, nil)
				p.Send(0, 1, nil, 8192)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBcastBinomialP32 measures one full simulated binomial
// broadcast of 1 MB over 32 ranks (≈ 4200 message events).
func BenchmarkBcastBinomialP32(b *testing.B) {
	b.ReportAllocs()
	cfg := cluster.Grisou().Net
	cfg.Nodes = 32
	for i := 0; i < b.N; i++ {
		_, err := mpi.Run(cfg, 32, func(p *mpi.Proc) error {
			coll.Bcast(p, coll.BcastBinomial, 0, coll.Synthetic(1<<20), 8192)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
