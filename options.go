package mpicollperf

import (
	"context"

	"mpicollperf/internal/core"
)

// Option configures a Calibrate call. Options compose freely and their
// order does not matter; the zero configuration (no options) reproduces
// the paper's defaults on the given platform.
type Option func(*options)

// options accumulates the effect of a Calibrate call's Options. The
// engine is tracked separately from the settings so WithEngine and
// WithMeasureSettings compose in either order.
type options struct {
	cfg          CalibrationConfig
	engine       Engine
	engineSet    bool
	perturbation *PerturbationSpec
}

// WithProcs sets the number of processes the calibration experiments use
// (default: half the platform, minimum 4).
func WithProcs(n int) Option {
	return func(o *options) { o.cfg.Procs = n }
}

// WithSizes sets the broadcast message sizes of the calibration grid
// (default: the paper's 10 log-spaced sizes from 8 KB to 4 MB).
func WithSizes(sizes ...int) Option {
	return func(o *options) { o.cfg.Sizes = sizes }
}

// WithWorkers bounds the measurement concurrency of the calibration
// sweep. 0 (the default) means GOMAXPROCS; 1 reproduces the serial path.
// The effective count is clamped to GOMAXPROCS — measurements are pure
// CPU, so oversubscribing cores only adds overhead — which makes any
// value safe to pass. Concurrency never changes the fitted parameters.
func WithWorkers(n int) Option {
	return func(o *options) { o.cfg.Workers = n }
}

// WithCache attaches a measurement cache: already-measured grid points
// are served from it, and fresh measurements fill it.
func WithCache(c *MeasurementCache) Option {
	return func(o *options) { o.cfg.Cache = c }
}

// WithEngine selects the measurement execution engine (default
// EngineAuto). Engines are bit-identical in their results; EngineReplay
// additionally asserts that the replay fast path is taken.
func WithEngine(e Engine) Option {
	return func(o *options) { o.engine, o.engineSet = e, true }
}

// WithPerturbation calibrates on the platform degraded by spec instead of
// the quiet platform — the scenario of the robustness experiments. A nil
// spec is a no-op.
func WithPerturbation(spec *PerturbationSpec) Option {
	return func(o *options) { o.perturbation = spec }
}

// WithMeasureSettings overrides the adaptive measurement loop's
// parameters. The zero value of each field falls back to its default
// (DefaultMeasureSettings documents them); the Engine field is ignored —
// use WithEngine.
func WithMeasureSettings(set MeasureSettings) Option {
	return func(o *options) {
		engine := o.cfg.Settings.Engine
		o.cfg.Settings = set
		o.cfg.Settings.Engine = engine
	}
}

// WithPlanTemplates toggles the calibration sweep's plan-template cache
// (default on): under the replay engine, one execution plan is captured
// per structure class — per (algorithm, communicator size, segment
// count) — and every other grid point of the class rebinds that plan
// goroutine-free instead of re-running the scheduler. Fitted parameters
// are bit-identical either way; pass false to benchmark or debug the
// uncached path.
func WithPlanTemplates(enabled bool) Option {
	return func(o *options) { o.cfg.DisablePlanTemplates = !enabled }
}

// WithMetrics attaches a metrics registry: the calibration records sweep,
// cache, engine, and fit metrics into it (see internal/obs). Metrics are
// purely observational — calibrations are bit-identical with or without
// a registry attached.
func WithMetrics(m *MetricsRegistry) Option {
	return func(o *options) { o.cfg.Metrics = m }
}

// Calibrate runs the paper's offline estimation pipeline (§4) on a
// platform and returns a ready selector. A cancelled ctx stops the
// calibration sweep promptly. With no options it reproduces the paper's
// methodology; see the With* options for workers, caching, engine
// selection, perturbation, measurement settings, and metrics.
func Calibrate(ctx context.Context, pr Profile, opts ...Option) (*Selector, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.engineSet {
		o.cfg.Settings.Engine = o.engine
	}
	if o.perturbation != nil {
		pr = pr.Perturbed(o.perturbation)
	}
	return core.CalibrateCtx(ctx, pr, o.cfg)
}
