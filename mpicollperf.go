// Package mpicollperf reproduces "A New Model-Based Approach to
// Performance Comparison of MPI Collective Algorithms" (Nuriyev &
// Lastovetsky, PaCT 2021) as a self-contained Go library.
//
// The library bundles:
//
//   - a deterministic discrete-event cluster simulator standing in for the
//     paper's Grid'5000 Grisou and Gros testbeds;
//   - an MPI-like runtime and the six Open MPI 3.1 broadcast algorithms
//     (plus gather, scatter, reduce and barrier collectives);
//   - the paper's two contributions: implementation-derived analytical
//     models of the broadcast algorithms and per-algorithm estimation of
//     their Hockney parameters from collective communication experiments;
//   - three selectors — model-based (the paper's), Open MPI's fixed
//     decision function, and the measured oracle — and generators for
//     every table and figure of the paper's evaluation.
//
// This facade re-exports the high-level workflow; power users can reach
// the full machinery through the internal packages (the cmd tools and
// examples show how).
//
// Quick start:
//
//	profile := mpicollperf.Grisou()
//	sel, err := mpicollperf.Calibrate(profile, mpicollperf.CalibrationConfig{})
//	if err != nil { ... }
//	choice, err := sel.Best(90, 1<<20) // which algorithm for 1 MB over 90 ranks?
package mpicollperf

import (
	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/selection"
)

// Re-exported types: the calibrated selector and its inputs/outputs.
type (
	// Profile describes a simulated cluster platform.
	Profile = cluster.Profile
	// Selector is a calibrated run-time broadcast-algorithm selector.
	Selector = core.Selector
	// Choice is a selected algorithm plus segment size.
	Choice = selection.Choice
	// BcastAlgorithm identifies one of the six broadcast algorithms.
	BcastAlgorithm = coll.BcastAlgorithm
	// CalibrationConfig parameterises the offline estimation phase.
	CalibrationConfig = estimate.AlphaBetaConfig
	// MeasureSettings controls the adaptive measurement loop.
	MeasureSettings = experiment.Settings
	// Models bundles γ and per-algorithm Hockney parameters.
	Models = model.BcastModels
	// MeasurementCache is a content-addressed store of measurement
	// results; attach one to CalibrationConfig.Cache to make repeated
	// calibrations of the same platform skip already-measured grid
	// points.
	MeasurementCache = experiment.Cache
)

// NewMeasurementCache returns an in-memory measurement cache.
func NewMeasurementCache() *MeasurementCache { return experiment.NewCache() }

// NewDiskMeasurementCache returns a measurement cache persisted as JSON
// files under dir (created if missing), shared across process
// invocations.
func NewDiskMeasurementCache(dir string) (*MeasurementCache, error) {
	return experiment.NewDiskCache(dir)
}

// The six Open MPI 3.1 broadcast algorithms.
const (
	BcastLinear      = coll.BcastLinear
	BcastChain       = coll.BcastChain
	BcastKChain      = coll.BcastKChain
	BcastBinary      = coll.BcastBinary
	BcastSplitBinary = coll.BcastSplitBinary
	BcastBinomial    = coll.BcastBinomial
)

// Grisou returns the simulated Grid'5000 Grisou platform (10 Gbps
// Ethernet, up to 90 processes).
func Grisou() Profile { return cluster.Grisou() }

// Gros returns the simulated Grid'5000 Gros platform (25 Gbps Ethernet,
// up to 124 processes).
func Gros() Profile { return cluster.Gros() }

// CustomCluster builds a platform from node count, one-way latency
// (seconds) and link bandwidth (bytes/second).
func CustomCluster(name string, nodes int, latency, bandwidthBps float64) (Profile, error) {
	return cluster.Custom(name, nodes, latency, bandwidthBps)
}

// Calibrate runs the paper's offline estimation pipeline (§4) on a
// platform and returns a ready selector.
func Calibrate(pr Profile, cfg CalibrationConfig) (*Selector, error) {
	return core.Calibrate(pr, cfg)
}

// LoadCalibration restores a selector from a JSON file written by
// Selector.SaveModels.
func LoadCalibration(pr Profile, path string) (*Selector, error) {
	return core.LoadModels(pr, path)
}

// OpenMPIDecision is Open MPI 3.1's hard-coded broadcast decision
// function, for comparison against a calibrated selector.
func OpenMPIDecision(P, m int) Choice { return selection.OpenMPIFixed(P, m) }

// DefaultMeasureSettings returns the paper's measurement methodology: 95%
// confidence, 2.5% precision.
func DefaultMeasureSettings() MeasureSettings { return experiment.DefaultSettings() }

// BcastAlgorithms lists the six algorithms in a stable order.
func BcastAlgorithms() []BcastAlgorithm { return coll.BcastAlgorithms() }
