// Package mpicollperf reproduces "A New Model-Based Approach to
// Performance Comparison of MPI Collective Algorithms" (Nuriyev &
// Lastovetsky, PaCT 2021) as a self-contained Go library.
//
// The library bundles:
//
//   - a deterministic discrete-event cluster simulator standing in for the
//     paper's Grid'5000 Grisou and Gros testbeds;
//   - an MPI-like runtime and the six Open MPI 3.1 broadcast algorithms
//     (plus gather, scatter, reduce and barrier collectives);
//   - the paper's two contributions: implementation-derived analytical
//     models of the broadcast algorithms and per-algorithm estimation of
//     their Hockney parameters from collective communication experiments;
//   - three selectors — model-based (the paper's), Open MPI's fixed
//     decision function, and the measured oracle — and generators for
//     every table and figure of the paper's evaluation.
//
// This facade re-exports the high-level workflow — calibration with
// functional options (see Calibrate and the With* options), persistence,
// engine selection, perturbation, robustness scoring, and the metrics
// registry; power users can still reach the full machinery through the
// internal packages (the cmd tools and examples show how).
//
// Quick start:
//
//	profile := mpicollperf.Grisou()
//	sel, err := mpicollperf.Calibrate(context.Background(), profile)
//	if err != nil { ... }
//	choice, err := sel.Best(90, 1<<20) // which algorithm for 1 MB over 90 ranks?
//
// Beyond broadcast, Selector.BestFor(op, P, m) answers the same query for
// any calibrated collective family (see Collectives, CalibrateExtended);
// the mpicollperfd daemon serves both shapes over a versioned HTTP/JSON
// API (cmd/mpicollperfd, internal/serve).
package mpicollperf

import (
	"context"
	"fmt"
	"sort"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/model"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
	"mpicollperf/internal/selection"
)

// Daemon-facing sentinel errors (see internal/serve): match them with
// errors.Is to map selection failures to responses without string
// matching.
var (
	// ErrNotCalibrated reports a selection query against a (profile,
	// collective) pair that has no fitted models yet.
	ErrNotCalibrated = core.ErrNotCalibrated
	// ErrUnknownProfile reports a query referencing an unknown platform
	// profile.
	ErrUnknownProfile = core.ErrUnknownProfile
)

// Re-exported types: the calibrated selector and its inputs/outputs.
type (
	// Profile describes a simulated cluster platform.
	Profile = cluster.Profile
	// Selector is a calibrated run-time broadcast-algorithm selector.
	Selector = core.Selector
	// Choice is a selected algorithm plus segment size.
	Choice = selection.Choice
	// BcastAlgorithm identifies one of the six broadcast algorithms.
	BcastAlgorithm = coll.BcastAlgorithm
	// CalibrationConfig parameterises the offline estimation phase.
	CalibrationConfig = estimate.AlphaBetaConfig
	// MeasureSettings controls the adaptive measurement loop.
	MeasureSettings = experiment.Settings
	// Models bundles γ and per-algorithm Hockney parameters.
	Models = model.BcastModels
	// MeasurementCache is a content-addressed store of measurement
	// results; attach one with WithCache to make repeated calibrations of
	// the same platform skip already-measured grid points.
	MeasurementCache = experiment.Cache
	// Engine selects how measurement repetitions execute (attach with
	// WithEngine); all engines produce bit-identical results.
	Engine = experiment.Engine
	// PerturbationSpec is a deterministic platform degradation: stragglers,
	// link slowdowns, jitter, brownouts. Compose one onto a Profile with
	// Profile.Perturbed or calibrate under it with WithPerturbation.
	PerturbationSpec = perturb.Spec
	// MetricsRegistry collects the pipeline's counters, gauges, and
	// histogram/span metrics; attach one with WithMetrics and export it
	// with its WriteJSON/WritePrometheus/WriteTable methods.
	MetricsRegistry = obs.Registry
	// RobustnessConfig parameterises a Robustness sweep.
	RobustnessConfig = selection.RobustnessConfig
	// RobustnessReport scores the selectors over a perturbation-intensity
	// grid (render with its Render or CSV methods).
	RobustnessReport = selection.RobustnessReport
	// UnsupportedVersionError is returned by LoadCalibration for a model
	// file whose schema version this build does not understand.
	UnsupportedVersionError = core.UnsupportedVersionError
	// OpChoice is a collective-agnostic selection result — the winning
	// algorithm of one collective family for (P, m), as returned by
	// Selector.BestFor and served by the mpicollperfd daemon.
	OpChoice = core.OpChoice
	// ExtendedSelector applies the paper's model-based selection to any
	// collective family calibrated through CalibrateExtended — the
	// paper's future-work claim that the approach generalises beyond
	// broadcast.
	ExtendedSelector = selection.ExtendedSelector
	// CollectiveSpec describes one (collective, algorithm) pair of an
	// extended family: its implementation-derived model coefficients and
	// the operation to measure (see CollectiveSpecs).
	CollectiveSpec = estimate.CollectiveSpec
	// Gamma is the platform's estimated γ(P) function (Models.Gamma
	// carries the calibrated one).
	Gamma = model.Gamma
)

// OpBcast names the broadcast collective family in Selector.BestFor
// queries and daemon requests; Collectives lists the extended families.
const OpBcast = core.OpBcast

// NewMeasurementCache returns an in-memory measurement cache.
func NewMeasurementCache() *MeasurementCache { return experiment.NewCache() }

// NewDiskMeasurementCache returns a measurement cache persisted as JSON
// files under dir (created if missing), shared across process
// invocations.
func NewDiskMeasurementCache(dir string) (*MeasurementCache, error) {
	return experiment.NewDiskCache(dir)
}

// The six Open MPI 3.1 broadcast algorithms.
const (
	BcastLinear      = coll.BcastLinear
	BcastChain       = coll.BcastChain
	BcastKChain      = coll.BcastKChain
	BcastBinary      = coll.BcastBinary
	BcastSplitBinary = coll.BcastSplitBinary
	BcastBinomial    = coll.BcastBinomial
)

// The measurement execution engines (see Engine and WithEngine).
const (
	EngineAuto      = experiment.EngineAuto
	EngineScheduler = experiment.EngineScheduler
	EngineReplay    = experiment.EngineReplay
)

// ParseEngine parses an engine name ("auto", "scheduler", "replay"), as
// the cmd tools' -engine flags do.
func ParseEngine(s string) (Engine, error) { return experiment.ParseEngine(s) }

// NewMetricsRegistry returns an empty metrics registry for WithMetrics.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ParsePerturbation parses a perturbation spec from its textual form (the
// cmd tools' -perturb flag syntax, e.g.
// "straggler:node=3,cpu=2.0;link:src=0,dst=1,lat=1.5;jitter:uniform").
func ParsePerturbation(text string) (*PerturbationSpec, error) { return perturb.Parse(text) }

// RandomPerturbation generates a deterministic random perturbation of the
// given intensity in [0, 1] for a platform with nics network interfaces —
// the generator behind the robustness experiments. Same arguments, same
// spec.
func RandomPerturbation(seed int64, intensity float64, nics int) *PerturbationSpec {
	return perturb.Random(seed, intensity, nics)
}

// Robustness stress-tests a calibrated selector (and Open MPI's fixed
// one) on deterministically degraded versions of the platform, scoring
// each against the degraded oracle per perturbation intensity. The
// selector keeps deciding from its quiet-platform calibration — the
// deployment situation when a production cluster degrades under its
// tuning tables.
func Robustness(ctx context.Context, pr Profile, sel *Selector, cfg RobustnessConfig) (RobustnessReport, error) {
	return selection.Robustness(ctx, pr, selection.ModelBased{Models: sel.Models}, cfg)
}

// Grisou returns the simulated Grid'5000 Grisou platform (10 Gbps
// Ethernet, up to 90 processes).
func Grisou() Profile { return cluster.Grisou() }

// Gros returns the simulated Grid'5000 Gros platform (25 Gbps Ethernet,
// up to 124 processes).
func Gros() Profile { return cluster.Gros() }

// CustomCluster builds a platform from node count, one-way latency
// (seconds) and link bandwidth (bytes/second).
func CustomCluster(name string, nodes int, latency, bandwidthBps float64) (Profile, error) {
	return cluster.Custom(name, nodes, latency, bandwidthBps)
}

// LoadCalibration restores a selector from a JSON file written by
// Selector.SaveModels. A file with an unknown schema version is rejected
// with an *UnsupportedVersionError.
func LoadCalibration(pr Profile, path string) (*Selector, error) {
	return core.LoadModels(pr, path)
}

// OpenMPIDecision is Open MPI 3.1's hard-coded broadcast decision
// function, for comparison against a calibrated selector.
func OpenMPIDecision(P, m int) Choice { return selection.OpenMPIFixed(P, m) }

// DefaultMeasureSettings returns the paper's measurement methodology: 95%
// confidence, 2.5% precision.
func DefaultMeasureSettings() MeasureSettings { return experiment.DefaultSettings() }

// BcastAlgorithms lists the six algorithms in a stable order.
func BcastAlgorithms() []BcastAlgorithm { return coll.BcastAlgorithms() }

// Collectives lists every extended collective family CalibrateExtended
// and Selector.BestFor understand beyond OpBcast, sorted by name:
// allgather, allreduce, alltoall, gather, reduce, reduce_scatter,
// scatter.
func Collectives() []string {
	fams := estimate.AllSpecFamilies()
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CollectiveSpecs returns the estimation specs of one extended collective
// family (every algorithm variant of the named collective), for
// CalibrateExtended.
func CollectiveSpecs(op string) ([]CollectiveSpec, error) {
	specs, ok := estimate.AllSpecFamilies()[op]
	if !ok {
		return nil, fmt.Errorf("mpicollperf: unknown collective family %q (have %v)", op, Collectives())
	}
	return specs, nil
}

// CalibrateExtended fits per-algorithm Hockney parameters for an extended
// collective family on a platform, reusing an already-estimated γ
// (typically Models.Gamma of a calibrated Selector), and returns a
// selector for that family — the generalisation of the paper's method
// beyond broadcast. Selector.BestFor answers the same queries through the
// bundled shape the daemon serves.
func CalibrateExtended(pr Profile, specs []CollectiveSpec, g Gamma, cfg CalibrationConfig) (*ExtendedSelector, error) {
	return selection.CalibrateExtended(pr, specs, g, cfg)
}
