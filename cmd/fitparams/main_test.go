package main

import (
	"io"
	"path/filepath"
	"testing"
)

// The calibration itself is exercised end to end elsewhere (core tests,
// the CLI integration test of cmd/mpicollperf); these tests cover the
// flag surface, which must reject bad inputs before any measuring starts.

func TestRejectsUnknownCluster(t *testing.T) {
	if err := run([]string{"-cluster", "nonesuch"}, io.Discard); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestProfileFlagValidation(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof")
	if err := run([]string{"-memprofile", bad}, io.Discard); err == nil {
		t.Fatal("unwritable -memprofile path accepted")
	}
}
