// Command fitparams runs the paper's offline calibration (§4) on a
// simulated cluster: γ(P) estimation followed by per-algorithm α/β
// estimation, optionally persisting the result for later use by selectalg
// or a library consumer.
//
// The calibration grid — γ(P) experiments plus every algorithm's per-size
// experiments — is dispatched as one parallel sweep (-workers); with
// -cache the measurements persist on disk, so a later decisiongen (or a
// re-run) over the same grid skips them.
//
// Usage:
//
//	fitparams [-cluster grisou] [-procs 40] [-save grisou.json] \
//	          [-workers 0] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fitparams:", err)
		os.Exit(1)
	}
}

func run() error {
	clusterName := flag.String("cluster", "grisou", "cluster profile (grisou, gros)")
	procs := flag.Int("procs", 0, "processes for the α/β experiments (default: half the cluster)")
	save := flag.String("save", "", "write the calibration to this JSON file")
	workers := flag.Int("workers", 0, "concurrent measurements (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := flag.String("cache", "", "reuse measurements from this directory (created if missing)")
	flag.Parse()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	cfg := estimate.AlphaBetaConfig{
		Procs:    *procs,
		Settings: experiment.DefaultSettings(),
		Workers:  *workers,
		Progress: func(done, total int, r experiment.Result) {
			fmt.Fprintf(os.Stderr, "\rmeasured %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	if *cacheDir != "" {
		if cfg.Cache, err = experiment.NewDiskCache(*cacheDir); err != nil {
			return err
		}
	}
	sel, err := core.Calibrate(pr, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("calibration of %s (segment size %d B)\n\n", pr.Name, pr.SegmentSize)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "P\tgamma(P)\treps\tCI rel err")
	for p := 2; p <= pr.MaxLinearFanout; p++ {
		meas := sel.GammaDetail.Measurements[p]
		fmt.Fprintf(w, "%d\t%.3f\t%d\t%.4f\n",
			p, sel.Models.Gamma.At(p), meas.Reps, meas.CI.RelativeError())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "algorithm\talpha (s)\tbeta (s/B)")
	for _, alg := range coll.BcastAlgorithms() {
		par := sel.Models.Params[alg]
		fmt.Fprintf(w, "%v\t%.3e\t%.3e\n", alg, par.Alpha, par.Beta)
	}
	w.Flush()

	if *save != "" {
		if err := sel.SaveModels(*save); err != nil {
			return err
		}
		fmt.Printf("\ncalibration written to %s\n", *save)
	}
	return nil
}
