// Command fitparams runs the paper's offline calibration (§4) on a
// simulated cluster: γ(P) estimation followed by per-algorithm α/β
// estimation, optionally persisting the result for later use by selectalg
// or a library consumer.
//
// The calibration grid — γ(P) experiments plus every algorithm's per-size
// experiments — is dispatched as one parallel sweep (-workers); with
// -cache the measurements persist on disk, so a later decisiongen (or a
// re-run) over the same grid skips them.
//
// Usage:
//
//	fitparams [-cluster grisou] [-procs 40] [-save grisou.json] \
//	          [-workers 0] [-engine auto] [-cache DIR] \
//	          [-metrics metrics.json] \
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	          [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// -engine selects the measurement execution engine (auto, scheduler,
// replay); all three produce bit-identical calibrations, with auto
// re-timing repetitions from captured execution plans for speed.
//
// -metrics writes a JSON observability artifact of the calibration —
// sweep and engine counters plus per-algorithm fit durations, Huber
// iteration counts, and residual norms (the internal/obs snapshot
// schema; EXPERIMENTS.md documents the metric names).
//
// With -cpuprofile/-memprofile the tool records runtime/pprof profiles of
// the calibration for `go tool pprof`; the heap profile is taken at exit.
// -mutexprofile/-blockprofile additionally record contention and blocking
// profiles of the parallel sweep (full sampling for the run's duration).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fitparams:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("fitparams", flag.ContinueOnError)
	clusterName := fs.String("cluster", "grisou", "cluster profile (grisou, gros)")
	procs := fs.Int("procs", 0, "processes for the α/β experiments (default: half the cluster)")
	save := fs.String("save", "", "write the calibration to this JSON file")
	workers := fs.Int("workers", 0, "concurrent measurements (0 = GOMAXPROCS, 1 = serial)")
	engineFlag := fs.String("engine", "auto", "execution engine: auto (replay with scheduler fallback), scheduler, replay")
	metricsPath := fs.String("metrics", "", "write a JSON metrics artifact of the calibration to this file")
	cacheDir := fs.String("cache", "", "reuse measurements from this directory (created if missing)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the calibration to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile of the calibration to this file")
	blockProfile := fs.String("blockprofile", "", "write a blocking profile of the calibration to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := profiling.StartWith(profiling.Config{
		CPUPath:   *cpuProfile,
		MemPath:   *memProfile,
		MutexPath: *mutexProfile,
		BlockPath: *blockProfile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	engine, err := experiment.ParseEngine(*engineFlag)
	if err != nil {
		return err
	}
	set := experiment.DefaultSettings()
	set.Engine = engine
	cfg := estimate.AlphaBetaConfig{
		Procs:    *procs,
		Settings: set,
		Workers:  *workers,
		Progress: func(done, total int, r experiment.Result) {
			fmt.Fprintf(os.Stderr, "\rmeasured %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	if *cacheDir != "" {
		if cfg.Cache, err = experiment.NewDiskCache(*cacheDir); err != nil {
			return err
		}
	}
	if *metricsPath != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	sel, err := core.Calibrate(pr, cfg)
	if err != nil {
		return err
	}
	if *metricsPath != "" {
		if err := cfg.Metrics.WriteJSONFile(*metricsPath); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "calibration of %s (segment size %d B)\n\n", pr.Name, pr.SegmentSize)
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "P\tgamma(P)\treps\tCI rel err")
	for p := 2; p <= pr.MaxLinearFanout; p++ {
		meas := sel.GammaDetail.Measurements[p]
		fmt.Fprintf(w, "%d\t%.3f\t%d\t%.4f\n",
			p, sel.Models.Gamma.At(p), meas.Reps, meas.CI.RelativeError())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "algorithm\talpha (s)\tbeta (s/B)")
	for _, alg := range coll.BcastAlgorithms() {
		par := sel.Models.Params[alg]
		fmt.Fprintf(w, "%v\t%.3e\t%.3e\n", alg, par.Alpha, par.Beta)
	}
	w.Flush()

	if *save != "" {
		if err := sel.SaveModels(*save); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ncalibration written to %s\n", *save)
	}
	return nil
}
