package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mpicollperf/internal/mpi
cpu: AMD EPYC
BenchmarkSchedulerPingPong-8   	    2066	    573329 ns/op	      64 B/op	       3 allocs/op
BenchmarkSchedulerFanIn-8      	     750	   1589651 ns/op	    2048 B/op	      65 allocs/op
BenchmarkSweep/workers=1-8     	       1	1009327810 ns/op	        36.00 points/sweep	10987328 B/op	  152610 allocs/op
PASS
ok  	mpicollperf/internal/mpi	5.141s
`

func TestRunProducesJSON(t *testing.T) {
	var out, echo bytes.Buffer
	if err := run(strings.NewReader(sample), &out, &echo); err != nil {
		t.Fatal(err)
	}
	var got map[string]entry
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	pp := got["BenchmarkSchedulerPingPong-8"]
	if pp.NsPerOp != 573329 || pp.AllocsPerOp != 3 || pp.BytesPerOp != 64 || pp.Iterations != 2066 {
		t.Errorf("ping-pong entry = %+v", pp)
	}
	sw := got["BenchmarkSweep/workers=1-8"]
	if sw.NsPerOp != 1009327810 || sw.AllocsPerOp != 152610 {
		t.Errorf("sweep entry = %+v", sw)
	}
	// Non-benchmark lines must be echoed, not swallowed.
	if !strings.Contains(echo.String(), "PASS") || !strings.Contains(echo.String(), "goos: linux") {
		t.Errorf("echo output missing pass-through lines: %q", echo.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, echo bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 1s\n"), &out, &echo); err == nil {
		t.Fatal("input without benchmark lines accepted")
	}
}

func TestParseBenchLineIgnoresCustomMetrics(t *testing.T) {
	name, e, ok := parseBenchLine("BenchmarkX-4  10  5.5 ns/op  2.0 widgets/op")
	if !ok || name != "BenchmarkX-4" || e.NsPerOp != 5.5 {
		t.Fatalf("got %q %+v ok=%v", name, e, ok)
	}
}

// writeBaseline runs the sample text through run() and saves the JSON to
// a temp file, exactly as `make bench` produces a baseline.
func writeBaseline(t *testing.T, benchText string) string {
	t.Helper()
	var out, echo bytes.Buffer
	if err := run(strings.NewReader(benchText), &out, &echo); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsDeltas(t *testing.T) {
	baseline := writeBaseline(t, sample)
	improved := `BenchmarkSchedulerPingPong-8  2066  500000 ns/op  64 B/op  3 allocs/op
BenchmarkSchedulerFanIn-8  750  1589651 ns/op  2048 B/op  65 allocs/op
BenchmarkSweep/workers=1-8  2  500000000 ns/op  5000000 B/op  120000 allocs/op
PASS
`
	var out, echo bytes.Buffer
	if err := compare(strings.NewReader(improved), &out, &echo, baseline, 0.20); err != nil {
		t.Fatalf("improved run flagged as regression: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"BenchmarkSweep/workers=1-8", "-50.5%", // ns/op improvement
		"-12.8%", // ping-pong ns/op delta
		"+0.0%",  // fan-in unchanged
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	baseline := writeBaseline(t, sample)
	// Ping-pong 30% slower: beyond the 20% gate.
	slower := `BenchmarkSchedulerPingPong-8  2066  745327 ns/op  64 B/op  3 allocs/op
BenchmarkSchedulerFanIn-8  750  1589651 ns/op  2048 B/op  65 allocs/op
`
	var out, echo bytes.Buffer
	err := compare(strings.NewReader(slower), &out, &echo, baseline, 0.20)
	if err == nil {
		t.Fatalf("30%% ns/op regression passed the 20%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSchedulerPingPong-8") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	// The same run must pass with a 50% threshold.
	out.Reset()
	if err := compare(strings.NewReader(slower), &out, &echo, baseline, 0.50); err != nil {
		t.Errorf("30%% regression failed a 50%% threshold: %v", err)
	}
}

func TestCompareListsUnmatchedBenchmarks(t *testing.T) {
	baseline := writeBaseline(t, sample)
	renamed := `BenchmarkSchedulerPingPong-8  2066  573329 ns/op  64 B/op  3 allocs/op
BenchmarkBrandNew-8  100  1000 ns/op  0 B/op  0 allocs/op
`
	var out, echo bytes.Buffer
	if err := compare(strings.NewReader(renamed), &out, &echo, baseline, 0.20); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "new (not in baseline): BenchmarkBrandNew-8") {
		t.Errorf("report missing new-benchmark note:\n%s", report)
	}
	if !strings.Contains(report, "missing (baseline only): BenchmarkSchedulerFanIn-8") {
		t.Errorf("report missing baseline-only note:\n%s", report)
	}
}

func TestCompareRejectsBadBaseline(t *testing.T) {
	var out, echo bytes.Buffer
	in := strings.NewReader("BenchmarkX-1 10 5 ns/op\n")
	if err := compare(in, &out, &echo, filepath.Join(t.TempDir(), "absent.json"), 0.20); err == nil {
		t.Error("missing baseline file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	in = strings.NewReader("BenchmarkX-1 10 5 ns/op\n")
	if err := compare(in, &out, &echo, bad, 0.20); err == nil {
		t.Error("malformed baseline accepted")
	}
	// Disjoint benchmark sets: nothing to compare is an error, not a pass.
	disjoint := writeBaseline(t, "BenchmarkOther-1 10 5 ns/op\n")
	in = strings.NewReader("BenchmarkX-1 10 5 ns/op\n")
	if err := compare(in, &out, &echo, disjoint, 0.20); err == nil {
		t.Error("disjoint benchmark sets accepted")
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                     // too few fields
		"BenchmarkX notanint 5 ns/op",    // bad iteration count
		"BenchmarkX 10 5 widgets/op x y", // no ns/op at all
		"ok  pkg 1.2s",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}

const scalingSample = `goos: linux
BenchmarkSweep/workers=1   	       3	 455884725 ns/op	        36.00 points/sweep	55441416 B/op	  118862 allocs/op
BenchmarkSweep/workers=2   	       3	 240000000 ns/op	        36.00 points/sweep	55441410 B/op	  118862 allocs/op
BenchmarkSweep/workers=8   	       3	 120000000 ns/op	        36.00 points/sweep	55441410 B/op	  118862 allocs/op
BenchmarkSweepWarmPool/workers=1 	       3	 489656812 ns/op	 4402405 B/op	  117003 allocs/op
BenchmarkSweepWarmPool/workers=8 	       3	 488930345 ns/op	 4402400 B/op	  117003 allocs/op
BenchmarkSweepCached             	       3	    178767 ns/op	   38938 B/op	     156 allocs/op
PASS
ok  	mpicollperf/internal/experiment	16.210s
`

func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		name    string
		group   string
		workers int
		ok      bool
	}{
		{"BenchmarkSweep/workers=8", "BenchmarkSweep", 8, true},
		{"BenchmarkSweep/workers=8-16", "BenchmarkSweep-16", 8, true},
		{"BenchmarkSweepCached", "", 0, false},
		{"BenchmarkSweep/workers=x", "", 0, false},
	}
	for _, tc := range cases {
		group, workers, ok := splitWorkers(tc.name)
		if group != tc.group || workers != tc.workers || ok != tc.ok {
			t.Errorf("splitWorkers(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.name, group, workers, ok, tc.group, tc.workers, tc.ok)
		}
	}
}

func TestScalingEmitsCurvesAndArtifact(t *testing.T) {
	var out, echo bytes.Buffer
	artifact := filepath.Join(t.TempDir(), "scale.json")
	if err := scaling(strings.NewReader(scalingSample), &out, &echo, artifact, 0.25, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3.80x") {
		t.Errorf("workers=8 speedup missing from table:\n%s", out.String())
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var curves map[string][]scalePoint
	if err := json.Unmarshal(data, &curves); err != nil {
		t.Fatal(err)
	}
	sweep := curves["BenchmarkSweep"]
	if len(sweep) != 3 || sweep[0].Workers != 1 || sweep[2].Workers != 8 {
		t.Fatalf("BenchmarkSweep curve = %+v", sweep)
	}
	if got := sweep[2].Speedup; got < 3.79 || got > 3.81 {
		t.Errorf("workers=8 speedup = %v, want ~3.80", got)
	}
	if _, ok := curves["BenchmarkSweepCached"]; ok {
		t.Error("non-worker benchmark leaked into scaling curves")
	}
}

func TestScalingGateFailsOnAntiScaling(t *testing.T) {
	anti := `BenchmarkSweep/workers=1  1  500000000 ns/op  58000000 B/op  100 allocs/op
BenchmarkSweep/workers=8  1  1100000000 ns/op  203000000 B/op  100 allocs/op
`
	var out, echo bytes.Buffer
	err := scaling(strings.NewReader(anti), &out, &echo, "", 0.25, 0)
	if err == nil || !strings.Contains(err.Error(), "workers=8") {
		t.Fatalf("anti-scaling input passed the gate (err=%v)", err)
	}
	// A negative threshold disables the gate but keeps the report.
	out.Reset()
	if err := scaling(strings.NewReader(anti), &out, &echo, "", -1, 0); err != nil {
		t.Fatalf("gate not disabled by negative threshold: %v", err)
	}
	if !strings.Contains(out.String(), "0.45x") {
		t.Errorf("report missing slowdown line:\n%s", out.String())
	}
}

func TestCpuSuffix(t *testing.T) {
	cases := []struct {
		group string
		cpus  int
	}{
		{"BenchmarkSweep-8", 8},
		{"BenchmarkSweep-16", 16},
		{"BenchmarkSweep", 1}, // GOMAXPROCS=1 prints no suffix
		{"BenchmarkSweep-", 1},
		{"Benchmark-Odd-Name", 1},
	}
	for _, tc := range cases {
		if got := cpuSuffix(tc.group); got != tc.cpus {
			t.Errorf("cpuSuffix(%q) = %d, want %d", tc.group, got, tc.cpus)
		}
	}
}

func TestRequiredSpeedup(t *testing.T) {
	cases := []struct {
		min           float64
		workers, cpus int
		want          float64
	}{
		{2.0, 8, 8, 2.0}, // plenty of cores: full requirement
		{2.0, 8, 1, 0.8}, // 1-core recording: anti-regression bound
		{2.0, 8, 2, 1.6}, // 2 cores: 0.8 × 2
		{2.0, 2, 8, 1.6}, // 2 workers can use at most 2 cores
		{1.2, 8, 2, 1.2}, // requirement below the hardware cap
		{2.0, 8, 0, 0.8}, // unknown cpus treated as 1
	}
	for _, tc := range cases {
		if got := requiredSpeedup(tc.min, tc.workers, tc.cpus); got != tc.want {
			t.Errorf("requiredSpeedup(%v, %d, %d) = %v, want %v", tc.min, tc.workers, tc.cpus, got, tc.want)
		}
	}
}

// TestScalingMinSpeedupGate: with -min-speedup, a flat curve recorded on
// a multi-core machine fails (it should have scaled and didn't), while
// the same flat curve recorded on one core passes — no hardware, no
// speedup requirement — and a genuinely scaling curve passes everywhere.
func TestScalingMinSpeedupGate(t *testing.T) {
	flat8core := `BenchmarkSweep/workers=1-8  1  500000000 ns/op
BenchmarkSweep/workers=8-8  1  490000000 ns/op
`
	var out, echo bytes.Buffer
	err := scaling(strings.NewReader(flat8core), &out, &echo, "", 0.25, 2.0)
	if err == nil || !strings.Contains(err.Error(), "workers=8") {
		t.Fatalf("flat curve on 8 cpus passed -min-speedup 2.0 (err=%v)", err)
	}

	flat1core := `BenchmarkSweep/workers=1  1  500000000 ns/op
BenchmarkSweep/workers=8  1  490000000 ns/op
`
	out.Reset()
	if err := scaling(strings.NewReader(flat1core), &out, &echo, "", 0.25, 2.0); err != nil {
		t.Fatalf("flat curve on 1 cpu failed the hardware-aware gate: %v", err)
	}

	scaling8core := `BenchmarkSweep/workers=1-8  1  800000000 ns/op
BenchmarkSweep/workers=8-8  1  200000000 ns/op
`
	out.Reset()
	if err := scaling(strings.NewReader(scaling8core), &out, &echo, "", 0.25, 2.0); err != nil {
		t.Fatalf("4x-scaling curve failed -min-speedup 2.0: %v", err)
	}

	// But a 1-core recording that actually regressed still fails: the
	// cap is 0.8×, not a free pass.
	regressed1core := `BenchmarkSweep/workers=1  1  500000000 ns/op
BenchmarkSweep/workers=8  1  700000000 ns/op
`
	out.Reset()
	err = scaling(strings.NewReader(regressed1core), &out, &echo, "", -1, 2.0)
	if err == nil || !strings.Contains(err.Error(), "workers=8") {
		t.Fatalf("0.71x regression on 1 cpu passed the 0.8x floor (err=%v)", err)
	}
}

// TestScalingArtifactRecordsCpus: the JSON artifact carries the core
// count so a curve recorded on one machine gates correctly on another.
func TestScalingArtifactRecordsCpus(t *testing.T) {
	sample := `BenchmarkSweep/workers=1-8  1  800000000 ns/op
BenchmarkSweep/workers=8-8  1  200000000 ns/op
`
	var out, echo bytes.Buffer
	artifact := filepath.Join(t.TempDir(), "scale.json")
	if err := scaling(strings.NewReader(sample), &out, &echo, artifact, 0.25, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var curves map[string][]scalePoint
	if err := json.Unmarshal(data, &curves); err != nil {
		t.Fatal(err)
	}
	for _, p := range curves["BenchmarkSweep-8"] {
		if p.Cpus != 8 {
			t.Errorf("workers=%d recorded cpus=%d, want 8", p.Workers, p.Cpus)
		}
	}
}

func TestScalingRejectsInputWithoutWorkerBenchmarks(t *testing.T) {
	var out, echo bytes.Buffer
	noWorkers := "BenchmarkSchedulerPingPong-8  2066  573329 ns/op  64 B/op  3 allocs/op\n"
	if err := scaling(strings.NewReader(noWorkers), &out, &echo, "", 0.25, 0); err == nil {
		t.Fatal("input without a scaling group accepted")
	}
}
