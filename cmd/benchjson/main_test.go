package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: mpicollperf/internal/mpi
cpu: AMD EPYC
BenchmarkSchedulerPingPong-8   	    2066	    573329 ns/op	      64 B/op	       3 allocs/op
BenchmarkSchedulerFanIn-8      	     750	   1589651 ns/op	    2048 B/op	      65 allocs/op
BenchmarkSweep/workers=1-8     	       1	1009327810 ns/op	        36.00 points/sweep	10987328 B/op	  152610 allocs/op
PASS
ok  	mpicollperf/internal/mpi	5.141s
`

func TestRunProducesJSON(t *testing.T) {
	var out, echo bytes.Buffer
	if err := run(strings.NewReader(sample), &out, &echo); err != nil {
		t.Fatal(err)
	}
	var got map[string]entry
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	pp := got["BenchmarkSchedulerPingPong-8"]
	if pp.NsPerOp != 573329 || pp.AllocsPerOp != 3 || pp.BytesPerOp != 64 || pp.Iterations != 2066 {
		t.Errorf("ping-pong entry = %+v", pp)
	}
	sw := got["BenchmarkSweep/workers=1-8"]
	if sw.NsPerOp != 1009327810 || sw.AllocsPerOp != 152610 {
		t.Errorf("sweep entry = %+v", sw)
	}
	// Non-benchmark lines must be echoed, not swallowed.
	if !strings.Contains(echo.String(), "PASS") || !strings.Contains(echo.String(), "goos: linux") {
		t.Errorf("echo output missing pass-through lines: %q", echo.String())
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out, echo bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 1s\n"), &out, &echo); err == nil {
		t.Fatal("input without benchmark lines accepted")
	}
}

func TestParseBenchLineIgnoresCustomMetrics(t *testing.T) {
	name, e, ok := parseBenchLine("BenchmarkX-4  10  5.5 ns/op  2.0 widgets/op")
	if !ok || name != "BenchmarkX-4" || e.NsPerOp != 5.5 {
		t.Fatalf("got %q %+v ok=%v", name, e, ok)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                     // too few fields
		"BenchmarkX notanint 5 ns/op",    // bad iteration count
		"BenchmarkX 10 5 widgets/op x y", // no ns/op at all
		"ok  pkg 1.2s",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q parsed as a benchmark", line)
		}
	}
}
