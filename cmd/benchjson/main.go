// Command benchjson converts `go test -bench -benchmem` text on stdin
// into a JSON object on stdout, mapping each benchmark name to its
// ns/op, allocs/op, and B/op. The Makefile's bench target pipes the
// scheduler and sweep benchmarks through it to produce BENCH_sched.json,
// a machine-readable record that successive commits can diff:
//
//	go test -bench=Scheduler -benchmem ./internal/mpi/ | benchjson > BENCH_sched.json
//
// Benchmark lines keep their -cpu suffix (e.g. BenchmarkFoo-8) so runs
// from machines with different core counts are not conflated. Non-bench
// lines (PASS, ok, metric-only output) pass through untouched to stderr,
// keeping failures visible when the pipe is part of a make target.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark's measured costs.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	if err := run(os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out, echo io.Writer) error {
	results := make(map[string]entry)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name, e, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	// encoding/json sorts map keys, so the artifact is diffable across runs.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseBenchLine parses one line of `go test -bench` output, e.g.
//
//	BenchmarkSweep/workers=1-8  1  1009327810 ns/op  10987328 B/op  152610 allocs/op
//
// Value/unit pairs after the iteration count come in any order and any
// subset (custom b.ReportMetric units are ignored).
func parseBenchLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "allocs/op":
			e.AllocsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		}
	}
	if !seen {
		return "", entry{}, false
	}
	return fields[0], e, true
}
