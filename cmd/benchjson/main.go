// Command benchjson converts `go test -bench -benchmem` text on stdin
// into a JSON object on stdout, mapping each benchmark name to its
// ns/op, allocs/op, and B/op. The Makefile's bench target pipes the
// scheduler, replay, and sweep benchmarks through it to produce
// BENCH_sched.json and BENCH_replay.json, machine-readable records that
// successive commits can diff:
//
//	go test -bench=Scheduler -benchmem ./internal/mpi/ | benchjson > BENCH_sched.json
//
// With -baseline the tool compares instead of converting: the fresh
// benchmark text on stdin is diffed against a previously recorded JSON
// file, a per-benchmark delta table (ns/op, B/op, allocs/op) is printed
// for every name present on both sides, and the exit status is non-zero
// when any benchmark's ns/op regressed by more than -threshold (default
// 0.20, i.e. 20%). The Makefile's benchdiff target uses this as a
// performance gate:
//
//	go test -bench=Sweep -benchmem ./internal/experiment/ | benchjson -baseline BENCH_sched.json
//
// With -scaling the tool reads worker-count sub-benchmarks (names ending
// in "/workers=N") from stdin, groups them per benchmark, and prints each
// group's scaling curve — ns/op, speedup over the workers=1 line, and the
// B/op ratio. The exit status is non-zero when any workers=N line is
// slower than its workers=1 baseline by more than -threshold (pass a
// negative threshold to disable the gate); -scaling-out additionally
// records the curve as a JSON artifact (BENCH_sweepscale.json in this
// repository). The Makefile's bench and benchdiff targets use this as the
// sweep-scaling record and gate:
//
//	go test -bench=Sweep -benchmem ./internal/experiment/ | benchjson -scaling -scaling-out BENCH_sweepscale.json
//
// -min-speedup raises the -scaling gate from an anti-regression guard to
// a speedup requirement: every workers=N line (N > 1) must be at least S×
// faster than its workers=1 baseline. The requirement is hardware-aware —
// a worker can't speed anything up without a core to run on — so each
// line's effective bar is min(S, 0.8·min(N, cpus)), with cpus taken from
// the benchmark name's GOMAXPROCS suffix (BenchmarkSweep/workers=8-8 ran
// on 8 cores). On an 8-core box -min-speedup 2.0 demands the full 2×; on
// a single-core box the same flag degrades to the 0.8× anti-regression
// bound, because demanding parallel speedup without parallel hardware
// would only mean recording benchmarks on big machines and gating them on
// small ones. The Makefile's benchdiff target sets SCALING_MIN_SPEEDUP.
//
// Benchmark lines keep their -cpu suffix (e.g. BenchmarkFoo-8) so runs
// from machines with different core counts are not conflated. Non-bench
// lines (PASS, ok, metric-only output) pass through untouched to stderr,
// keeping failures visible when the pipe is part of a make target.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// entry is one benchmark's measured costs.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	baseline := flag.String("baseline", "", "compare stdin against this JSON record instead of emitting JSON")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated ns/op regression (fraction) in -baseline and -scaling modes; negative disables the -scaling gate")
	scalingMode := flag.Bool("scaling", false, "group /workers=N sub-benchmarks on stdin into per-benchmark scaling curves")
	scalingOut := flag.String("scaling-out", "", "with -scaling, also record the curves as JSON to this file")
	minSpeedup := flag.Float64("min-speedup", 0, "with -scaling, require each workers=N line to be this many times faster than workers=1, capped at 0.8×min(N, cpus) for the recording machine's core count; 0 disables")
	flag.Parse()
	var err error
	switch {
	case *baseline != "" && *scalingMode:
		err = fmt.Errorf("-baseline and -scaling are mutually exclusive")
	case *minSpeedup != 0 && !*scalingMode:
		err = fmt.Errorf("-min-speedup requires -scaling")
	case *minSpeedup < 0:
		err = fmt.Errorf("-min-speedup %g must be positive", *minSpeedup)
	case *baseline != "":
		err = compare(os.Stdin, os.Stdout, os.Stderr, *baseline, *threshold)
	case *scalingMode:
		err = scaling(os.Stdin, os.Stdout, os.Stderr, *scalingOut, *threshold, *minSpeedup)
	default:
		err = run(os.Stdin, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text from in, echoing non-benchmark lines
// to echo, and returns the benchmark entries by name.
func parse(in io.Reader, echo io.Writer) (map[string]entry, error) {
	results := make(map[string]entry)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name, e, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return results, nil
}

func run(in io.Reader, out, echo io.Writer) error {
	results, err := parse(in, echo)
	if err != nil {
		return err
	}
	// encoding/json sorts map keys, so the artifact is diffable across runs.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// compare diffs fresh benchmark text on in against the JSON record at
// baselineFile, printing per-benchmark deltas to out and returning an
// error when any ns/op regression exceeds threshold.
func compare(in io.Reader, out, echo io.Writer, baselineFile string, threshold float64) error {
	base, err := readBaseline(baselineFile)
	if err != nil {
		return err
	}
	fresh, err := parse(in, echo)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common with %s", baselineFile)
	}
	sort.Strings(names)
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tns/op old\tns/op new\tdelta\tB/op\tallocs/op")
	var regressed []string
	for _, name := range names {
		old, cur := base[name], fresh[name]
		d := delta(old.NsPerOp, cur.NsPerOp)
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%s\t%s\n",
			name, old.NsPerOp, cur.NsPerOp, formatDelta(d),
			formatDelta(delta(old.BytesPerOp, cur.BytesPerOp)),
			formatDelta(delta(old.AllocsPerOp, cur.AllocsPerOp)))
		if d > threshold {
			regressed = append(regressed, fmt.Sprintf("%s (%s)", name, formatDelta(d)))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, name := range sortedMissing(fresh, base) {
		fmt.Fprintf(out, "new (not in baseline): %s\n", name)
	}
	for _, name := range sortedMissing(base, fresh) {
		fmt.Fprintf(out, "missing (baseline only): %s\n", name)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regression beyond %.0f%%: %s",
			threshold*100, strings.Join(regressed, ", "))
	}
	return nil
}

// scalePoint is one worker count of a benchmark's scaling curve.
type scalePoint struct {
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Speedup is ns/op of the workers=1 line over this line (>1 means
	// this worker count is faster); 0 when the group has no workers=1.
	Speedup float64 `json:"speedup,omitempty"`
	// Cpus is the core count the benchmark ran with, from the name's
	// GOMAXPROCS suffix; 0 when the name carries none. Recorded so a
	// curve measured on one machine is gated correctly on another.
	Cpus int `json:"cpus,omitempty"`
}

// cpuSuffix extracts the GOMAXPROCS core count from a benchmark group
// name's trailing "-N" (go test appends it unless GOMAXPROCS is 1, which
// prints no suffix — return 1 then, the count the suffix's absence means).
func cpuSuffix(group string) int {
	i := strings.LastIndexByte(group, '-')
	if i < 0 || i == len(group)-1 {
		return 1
	}
	n, err := strconv.Atoi(group[i+1:])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// splitWorkers decomposes a benchmark name of the form
// "BenchmarkX/workers=N[-cpu]" into its group name (cpu suffix folded in,
// so different machines stay distinct) and worker count.
func splitWorkers(name string) (group string, workers int, ok bool) {
	i := strings.LastIndex(name, "/workers=")
	if i < 0 {
		return "", 0, false
	}
	rest := name[i+len("/workers="):]
	numEnd := 0
	for numEnd < len(rest) && rest[numEnd] >= '0' && rest[numEnd] <= '9' {
		numEnd++
	}
	if numEnd == 0 || (numEnd < len(rest) && rest[numEnd] != '-') {
		return "", 0, false
	}
	n, err := strconv.Atoi(rest[:numEnd])
	if err != nil {
		return "", 0, false
	}
	return name[:i] + rest[numEnd:], n, true
}

// scaling groups /workers=N sub-benchmarks into per-benchmark scaling
// curves, prints them, optionally records them as JSON, and fails when a
// worker count is slower than its group's workers=1 line beyond threshold
// (negative threshold: report only). minSpeedup > 0 additionally requires
// each workers=N line to reach min(minSpeedup, 0.8·min(N, cpus))× the
// workers=1 speed — the hardware-aware speedup gate.
func scaling(in io.Reader, out, echo io.Writer, outFile string, threshold, minSpeedup float64) error {
	fresh, err := parse(in, echo)
	if err != nil {
		return err
	}
	curves := make(map[string][]scalePoint)
	for name, e := range fresh {
		group, workers, ok := splitWorkers(name)
		if !ok {
			continue
		}
		curves[group] = append(curves[group], scalePoint{
			Workers: workers, NsPerOp: e.NsPerOp,
			BytesPerOp: e.BytesPerOp, AllocsPerOp: e.AllocsPerOp,
			Cpus: cpuSuffix(group),
		})
	}
	if len(curves) == 0 {
		return fmt.Errorf("no /workers=N benchmarks on stdin")
	}
	groups := make([]string, 0, len(curves))
	for g := range curves {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tworkers\tns/op\tspeedup\tB/op vs w1")
	var slow []string
	for _, g := range groups {
		pts := curves[g]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Workers < pts[j].Workers })
		var base *scalePoint
		for i := range pts {
			if pts[i].Workers == 1 {
				base = &pts[i]
			}
		}
		for i := range pts {
			p := &pts[i]
			speed, bratio := "-", "-"
			if base != nil && p.NsPerOp > 0 {
				p.Speedup = base.NsPerOp / p.NsPerOp
				speed = fmt.Sprintf("%.2fx", p.Speedup)
				if base.BytesPerOp > 0 {
					bratio = fmt.Sprintf("%.2fx", p.BytesPerOp/base.BytesPerOp)
				}
				if threshold >= 0 && p.Workers > 1 && p.NsPerOp > base.NsPerOp*(1+threshold) {
					slow = append(slow, fmt.Sprintf("%s/workers=%d (%.2fx slower)", g, p.Workers, p.NsPerOp/base.NsPerOp))
				}
				if minSpeedup > 0 && p.Workers > 1 {
					if required := requiredSpeedup(minSpeedup, p.Workers, p.Cpus); p.Speedup < required {
						slow = append(slow, fmt.Sprintf("%s/workers=%d (%.2fx, need ≥%.2fx on %d cpus)",
							g, p.Workers, p.Speedup, required, p.Cpus))
					}
				}
			}
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%s\t%s\n", g, p.Workers, p.NsPerOp, speed, bratio)
		}
		curves[g] = pts
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if outFile != "" {
		data, err := json.MarshalIndent(curves, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if len(slow) > 0 {
		return fmt.Errorf("worker counts failing the scaling gate: %s", strings.Join(slow, ", "))
	}
	return nil
}

// requiredSpeedup is the hardware-aware bar for one workers=N line: the
// requested minimum, capped at 80% of the cores the line could actually
// use (min(N, cpus)) — perfect scaling is unreachable, and on a 1-core
// recording the cap degrades the gate to a 0.8× anti-regression bound.
func requiredSpeedup(minSpeedup float64, workers, cpus int) float64 {
	if cpus < 1 {
		cpus = 1
	}
	usable := workers
	if cpus < usable {
		usable = cpus
	}
	if bar := 0.8 * float64(usable); bar < minSpeedup {
		return bar
	}
	return minSpeedup
}

func readBaseline(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]entry
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return base, nil
}

// sortedMissing returns the names in a that are absent from b, sorted.
func sortedMissing(a, b map[string]entry) []string {
	var names []string
	for name := range a {
		if _, ok := b[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// delta is the relative change from old to cur; 0 when old is 0 (nothing
// meaningful to compare against, e.g. a benchmark without -benchmem).
func delta(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old
}

func formatDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", d*100)
}

// parseBenchLine parses one line of `go test -bench` output, e.g.
//
//	BenchmarkSweep/workers=1-8  1  1009327810 ns/op  10987328 B/op  152610 allocs/op
//
// Value/unit pairs after the iteration count come in any order and any
// subset (custom b.ReportMetric units are ignored).
func parseBenchLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "allocs/op":
			e.AllocsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		}
	}
	if !seen {
		return "", entry{}, false
	}
	return fields[0], e, true
}
