// Command benchjson converts `go test -bench -benchmem` text on stdin
// into a JSON object on stdout, mapping each benchmark name to its
// ns/op, allocs/op, and B/op. The Makefile's bench target pipes the
// scheduler, replay, and sweep benchmarks through it to produce
// BENCH_sched.json and BENCH_replay.json, machine-readable records that
// successive commits can diff:
//
//	go test -bench=Scheduler -benchmem ./internal/mpi/ | benchjson > BENCH_sched.json
//
// With -baseline the tool compares instead of converting: the fresh
// benchmark text on stdin is diffed against a previously recorded JSON
// file, a per-benchmark delta table (ns/op, B/op, allocs/op) is printed
// for every name present on both sides, and the exit status is non-zero
// when any benchmark's ns/op regressed by more than -threshold (default
// 0.20, i.e. 20%). The Makefile's benchdiff target uses this as a
// performance gate:
//
//	go test -bench=Sweep -benchmem ./internal/experiment/ | benchjson -baseline BENCH_sched.json
//
// Benchmark lines keep their -cpu suffix (e.g. BenchmarkFoo-8) so runs
// from machines with different core counts are not conflated. Non-bench
// lines (PASS, ok, metric-only output) pass through untouched to stderr,
// keeping failures visible when the pipe is part of a make target.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// entry is one benchmark's measured costs.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	baseline := flag.String("baseline", "", "compare stdin against this JSON record instead of emitting JSON")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated ns/op regression (fraction) in -baseline mode")
	flag.Parse()
	var err error
	if *baseline != "" {
		err = compare(os.Stdin, os.Stdout, os.Stderr, *baseline, *threshold)
	} else {
		err = run(os.Stdin, os.Stdout, os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text from in, echoing non-benchmark lines
// to echo, and returns the benchmark entries by name.
func parse(in io.Reader, echo io.Writer) (map[string]entry, error) {
	results := make(map[string]entry)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name, e, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(echo, line)
			continue
		}
		results[name] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return results, nil
}

func run(in io.Reader, out, echo io.Writer) error {
	results, err := parse(in, echo)
	if err != nil {
		return err
	}
	// encoding/json sorts map keys, so the artifact is diffable across runs.
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// compare diffs fresh benchmark text on in against the JSON record at
// baselineFile, printing per-benchmark deltas to out and returning an
// error when any ns/op regression exceeds threshold.
func compare(in io.Reader, out, echo io.Writer, baselineFile string, threshold float64) error {
	base, err := readBaseline(baselineFile)
	if err != nil {
		return err
	}
	fresh, err := parse(in, echo)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common with %s", baselineFile)
	}
	sort.Strings(names)
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tns/op old\tns/op new\tdelta\tB/op\tallocs/op")
	var regressed []string
	for _, name := range names {
		old, cur := base[name], fresh[name]
		d := delta(old.NsPerOp, cur.NsPerOp)
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%s\t%s\n",
			name, old.NsPerOp, cur.NsPerOp, formatDelta(d),
			formatDelta(delta(old.BytesPerOp, cur.BytesPerOp)),
			formatDelta(delta(old.AllocsPerOp, cur.AllocsPerOp)))
		if d > threshold {
			regressed = append(regressed, fmt.Sprintf("%s (%s)", name, formatDelta(d)))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	for _, name := range sortedMissing(fresh, base) {
		fmt.Fprintf(out, "new (not in baseline): %s\n", name)
	}
	for _, name := range sortedMissing(base, fresh) {
		fmt.Fprintf(out, "missing (baseline only): %s\n", name)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regression beyond %.0f%%: %s",
			threshold*100, strings.Join(regressed, ", "))
	}
	return nil
}

func readBaseline(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base map[string]entry
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	return base, nil
}

// sortedMissing returns the names in a that are absent from b, sorted.
func sortedMissing(a, b map[string]entry) []string {
	var names []string
	for name := range a {
		if _, ok := b[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// delta is the relative change from old to cur; 0 when old is 0 (nothing
// meaningful to compare against, e.g. a benchmark without -benchmem).
func delta(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old
}

func formatDelta(d float64) string {
	return fmt.Sprintf("%+.1f%%", d*100)
}

// parseBenchLine parses one line of `go test -bench` output, e.g.
//
//	BenchmarkSweep/workers=1-8  1  1009327810 ns/op  10987328 B/op  152610 allocs/op
//
// Value/unit pairs after the iteration count come in any order and any
// subset (custom b.ReportMetric units are ignored).
func parseBenchLine(line string) (string, entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", entry{}, false
	}
	e := entry{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", entry{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
			seen = true
		case "allocs/op":
			e.AllocsPerOp = v
		case "B/op":
			e.BytesPerOp = v
		}
	}
	if !seen {
		return "", entry{}, false
	}
	return fields[0], e, true
}
