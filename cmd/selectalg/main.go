// Command selectalg answers the paper's run-time question: which broadcast
// algorithm should MPI_Bcast use for a given process count and message
// size? It prints the model-based selection (from a saved or freshly run
// calibration), Open MPI 3.1's fixed decision, and the per-algorithm model
// predictions.
//
// Usage:
//
//	selectalg [-cluster grisou] [-cal grisou.json] -np 90 -m 1048576
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/selection"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selectalg:", err)
		os.Exit(1)
	}
}

func run() error {
	clusterName := flag.String("cluster", "grisou", "cluster profile (grisou, gros)")
	calPath := flag.String("cal", "", "calibration JSON from fitparams (default: calibrate now)")
	np := flag.Int("np", 0, "number of processes (required)")
	m := flag.Int("m", 0, "message size in bytes (required)")
	flag.Parse()

	if *np < 2 || *m < 0 {
		return fmt.Errorf("need -np >= 2 and -m >= 0")
	}
	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}

	var sel *core.Selector
	if *calPath != "" {
		sel, err = core.LoadModels(pr, *calPath)
	} else {
		fmt.Fprintln(os.Stderr, "(no -cal file: running calibration, this takes a moment)")
		sel, err = core.Calibrate(pr, estimate.AlphaBetaConfig{Settings: experiment.DefaultSettings()})
	}
	if err != nil {
		return err
	}

	choice, err := sel.Best(*np, *m)
	if err != nil {
		return err
	}
	ompi := selection.OpenMPIFixed(*np, *m)
	fmt.Printf("cluster=%s P=%d m=%d B\n", pr.Name, *np, *m)
	fmt.Printf("model-based selection: %v\n", choice)
	fmt.Printf("open mpi 3.1 decision: %v\n\n", ompi)

	preds := sel.PredictAll(*np, *m)
	algs := make([]coll.BcastAlgorithm, 0, len(preds))
	for a := range preds {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool { return preds[algs[i]] < preds[algs[j]] })
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "rank\talgorithm\tpredicted time (s)")
	for i, a := range algs {
		fmt.Fprintf(w, "%d\t%v\t%.6f\n", i+1, a, preds[a])
	}
	w.Flush()
	return nil
}
