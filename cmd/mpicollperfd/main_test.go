package main

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, exercises
// an endpoint over real TCP, then shuts it down via the signal path.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-store", filepath.Join(dir, "store"),
		}, stop, &out)
	}()

	// Wait for the daemon to publish its bound address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	// An uncalibrated select reports not_calibrated over the wire.
	resp, err = http.Post("http://"+addr+"/v1/select", "application/json",
		strings.NewReader(`{"profile":"grisou","p":4,"m":8192}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncalibrated select: %d", resp.StatusCode)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "listening on") || !strings.Contains(s, "bye") {
		t.Fatalf("daemon output:\n%s", s)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	stop := make(chan os.Signal)
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, stop, &out); err == nil {
		t.Fatal("bad flag should fail")
	}
	if err := run([]string{"positional"}, stop, &out); err == nil {
		t.Fatal("positional args should fail")
	}
	if err := run([]string{"-addr", "127.0.0.1:notaport", "-store", t.TempDir()}, stop, &out); err == nil {
		t.Fatal("unlistenable address should fail")
	}
}
