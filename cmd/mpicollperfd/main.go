// Command mpicollperfd runs the calibration-as-a-service daemon: an
// HTTP/JSON server (see internal/serve) answering algorithm-selection
// queries from calibrated models and running calibration sweeps as
// cancellable asynchronous jobs over a persistent content-addressed
// store.
//
// Usage:
//
//	mpicollperfd [flags]
//
// Flags:
//
//	-addr HOST:PORT     listen address (default 127.0.0.1:7077; use :0
//	                    for an ephemeral port)
//	-addr-file PATH     write the bound address to PATH once listening
//	                    (lets scripts find an ephemeral port)
//	-store DIR          calibration store directory (default
//	                    "calibrations")
//	-workers N          concurrent calibration jobs (default 1)
//	-cache N            in-memory calibration LRU capacity (default 8)
//	-measure-workers N  per-sweep measurement concurrency (0 = all cores)
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops,
// in-flight requests finish, and running calibration jobs drain before
// the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpicollperf/internal/serve"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mpicollperfd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the listener fails or a signal
// arrives on stop (factored out of main so tests can drive a full
// lifecycle in-process).
func run(args []string, stop <-chan os.Signal, out io.Writer) error {
	fs := flag.NewFlagSet("mpicollperfd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	storeDir := fs.String("store", "calibrations", "calibration store directory")
	workers := fs.Int("workers", 1, "concurrent calibration jobs")
	cacheCap := fs.Int("cache", 8, "in-memory calibration LRU capacity")
	measureWorkers := fs.Int("measure-workers", 0, "per-sweep measurement concurrency (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	srv, err := serve.New(serve.Config{
		StoreDir:       *storeDir,
		Workers:        *workers,
		CacheCap:       *cacheCap,
		MeasureWorkers: *measureWorkers,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Fprintf(out, "mpicollperfd listening on %s (store %s, %d job workers)\n",
		bound, *storeDir, *workers)

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(out, "mpicollperfd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			srv.Close()
			return err
		}
		// In-flight calibration jobs finish before exit.
		srv.Close()
		fmt.Fprintln(out, "mpicollperfd: bye")
		return nil
	}
}
