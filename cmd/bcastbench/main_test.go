package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSizesRejectsSinglePoint is the regression test for the
// -points 1 bug: stats.LogSpace returns just [lo] for n <= 1, so a
// 1-point sweep used to silently measure only -min and drop -max. The
// flag validation now rejects it.
func TestSweepSizesRejectsSinglePoint(t *testing.T) {
	for _, points := range []int{-1, 0, 1} {
		if _, err := sweepSizes(8192, 4<<20, points); err == nil {
			t.Errorf("points=%d accepted; a <2-point sweep cannot cover both min and max", points)
		}
	}
}

func TestSweepSizesCoversBothEndpoints(t *testing.T) {
	sizes, err := sweepSizes(8192, 4<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != 8192 || sizes[1] != 4<<20 {
		t.Fatalf("sweepSizes(8192, 4MB, 2) = %v, want [8192 4194304]", sizes)
	}
}

func TestSweepSizesRejectsInvertedRange(t *testing.T) {
	if _, err := sweepSizes(4<<20, 8192, 10); err == nil {
		t.Error("inverted min/max accepted")
	}
	if _, err := sweepSizes(0, 8192, 10); err == nil {
		t.Error("non-positive min accepted")
	}
}

// TestProfileFlagsWriteFiles runs a minimal sweep with both pprof flags
// and checks the profile files come out non-empty — the whole point of
// the flags is handing `go tool pprof` something to open.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{
		"-np", "4", "-algs", "linear", "-min", "8192", "-max", "16384",
		"-points", "2", "-workers", "1",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", filepath.Base(path))
		}
	}
}

// TestProfileFlagValidation: an unwritable profile path must fail before
// any measurement runs.
func TestProfileFlagValidation(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")
	if err := run([]string{"-cpuprofile", bad}, io.Discard); err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
}

// TestEngineFlag: every engine produces byte-identical sweep output, and
// an unknown engine name is rejected.
func TestEngineFlag(t *testing.T) {
	sweep := func(engine string) string {
		var out strings.Builder
		err := run([]string{
			"-np", "6", "-min", "8192", "-max", "65536",
			"-points", "2", "-workers", "1", "-engine", engine,
		}, &out)
		if err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		return out.String()
	}
	ref := sweep("scheduler")
	for _, engine := range []string{"auto", "replay"} {
		if got := sweep(engine); got != ref {
			t.Errorf("-engine %s output differs from scheduler:\n%s\nvs\n%s", engine, got, ref)
		}
	}
	if err := run([]string{"-engine", "warp"}, io.Discard); err == nil {
		t.Fatal("unknown -engine accepted")
	}
}
