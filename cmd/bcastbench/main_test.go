package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSweepSizesRejectsSinglePoint is the regression test for the
// -points 1 bug: stats.LogSpace returns just [lo] for n <= 1, so a
// 1-point sweep used to silently measure only -min and drop -max. The
// flag validation now rejects it.
func TestSweepSizesRejectsSinglePoint(t *testing.T) {
	for _, points := range []int{-1, 0, 1} {
		if _, err := sweepSizes(8192, 4<<20, points); err == nil {
			t.Errorf("points=%d accepted; a <2-point sweep cannot cover both min and max", points)
		}
	}
}

func TestSweepSizesCoversBothEndpoints(t *testing.T) {
	sizes, err := sweepSizes(8192, 4<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0] != 8192 || sizes[1] != 4<<20 {
		t.Fatalf("sweepSizes(8192, 4MB, 2) = %v, want [8192 4194304]", sizes)
	}
}

func TestSweepSizesRejectsInvertedRange(t *testing.T) {
	if _, err := sweepSizes(4<<20, 8192, 10); err == nil {
		t.Error("inverted min/max accepted")
	}
	if _, err := sweepSizes(0, 8192, 10); err == nil {
		t.Error("non-positive min accepted")
	}
}

// TestProfileFlagsWriteFiles runs a minimal sweep with both pprof flags
// and checks the profile files come out non-empty — the whole point of
// the flags is handing `go tool pprof` something to open.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	mutex := filepath.Join(dir, "mutex.pprof")
	block := filepath.Join(dir, "block.pprof")
	err := run([]string{
		"-np", "4", "-algs", "linear", "-min", "8192", "-max", "16384",
		"-points", "2", "-workers", "1",
		"-cpuprofile", cpu, "-memprofile", mem,
		"-mutexprofile", mutex, "-blockprofile", block,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, mutex, block} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", filepath.Base(path))
		}
	}
}

// TestProfileFlagValidation: an unwritable profile path must fail before
// any measurement runs.
func TestProfileFlagValidation(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")
	if err := run([]string{"-cpuprofile", bad}, io.Discard); err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
	bad = filepath.Join(t.TempDir(), "no", "such", "dir", "mutex.pprof")
	if err := run([]string{"-mutexprofile", bad}, io.Discard); err == nil {
		t.Fatal("unwritable -mutexprofile path accepted")
	}
}

// TestScaledNP: -np beyond the physical cluster enlarges the platform
// instead of erroring; below 2 it is still rejected.
func TestScaledNP(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-cluster", "grisou", "-np", "128", "-algs", "binomial",
		"-min", "8192", "-max", "16384", "-points", "2", "-workers", "1",
	}, &out)
	if err != nil {
		t.Fatalf("-np 128 on the 90-node grisou: %v", err)
	}
	if !strings.Contains(out.String(), "grisou@128") || !strings.Contains(out.String(), "P=128") {
		t.Fatalf("scaled sweep header missing grisou@128 / P=128:\n%s", out.String())
	}
	if err := run([]string{"-np", "1"}, io.Discard); err == nil {
		t.Fatal("-np 1 accepted")
	}
}

// TestScalingFlag: -scaling prints one timed row per worker count with
// the speedup column, and rejects bad specs and -cache combination.
func TestScalingFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-np", "6", "-algs", "linear,binomial", "-min", "8192", "-max", "16384",
		"-points", "2", "-scaling", "1,2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"sweep scaling on grisou", "speedup vs workers=1", "\n1 ", "\n2 ", "1.00x"} {
		if !strings.Contains(got, want) {
			t.Errorf("scaling output missing %q:\n%s", want, got)
		}
	}
	if err := run([]string{"-scaling", "1,zero"}, io.Discard); err == nil {
		t.Error("-scaling 1,zero accepted")
	}
	if err := run([]string{"-scaling", "0"}, io.Discard); err == nil {
		t.Error("-scaling 0 accepted")
	}
	if err := run([]string{"-scaling", "1,2", "-cache", t.TempDir()}, io.Discard); err == nil {
		t.Error("-scaling with -cache accepted")
	}
}

// TestScalingFlagMetrics: -scaling composes with -metrics — the artifact
// must record the pooled sweep's gauges.
func TestScalingFlagMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	err := run([]string{
		"-np", "4", "-algs", "linear", "-min", "8192", "-max", "16384",
		"-points", "2", "-scaling", "1", "-metrics", path,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mpi_runner_pool_created_total", "sweep_workers"} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("metrics artifact missing %q", want)
		}
	}
}

// TestVerboseClassScheduling: -v reports the class-aware scheduler's
// shape alongside the plan-template work split. A serial 2-size × 1-alg
// grid has 2 structure classes (linear pins segs=1, but the two sizes
// still share one class only for unsegmented algorithms — binomial
// segments, so each size is its own class) and no duplicate captures.
func TestVerboseClassScheduling(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-np", "4", "-algs", "binomial", "-min", "8192", "-max", "16384",
		"-points", "2", "-workers", "1", "-v",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "class scheduling: 2 class groups, 0 duplicate captures avoided") {
		t.Errorf("-v output missing the class-scheduling line:\n%s", got)
	}
	if !strings.Contains(got, "plan templates: 2 captured, 0 points rebound") {
		t.Errorf("-v output missing the plan-template line:\n%s", got)
	}
}

// TestEngineFlag: every engine produces byte-identical sweep output, and
// an unknown engine name is rejected.
func TestEngineFlag(t *testing.T) {
	sweep := func(engine string) string {
		var out strings.Builder
		err := run([]string{
			"-np", "6", "-min", "8192", "-max", "65536",
			"-points", "2", "-workers", "1", "-engine", engine,
		}, &out)
		if err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		return out.String()
	}
	ref := sweep("scheduler")
	for _, engine := range []string{"auto", "replay"} {
		if got := sweep(engine); got != ref {
			t.Errorf("-engine %s output differs from scheduler:\n%s\nvs\n%s", engine, got, ref)
		}
	}
	if err := run([]string{"-engine", "warp"}, io.Discard); err == nil {
		t.Fatal("unknown -engine accepted")
	}
}
