// Command bcastbench sweeps broadcast algorithms over message sizes on a
// simulated cluster and prints the measured execution times — the raw
// experimental curves behind the paper's figures.
//
// Usage:
//
//	bcastbench [-cluster grisou] [-np 90] [-algs binomial,binary] \
//	           [-min 8192] [-max 4194304] [-points 10] [-seg 8192]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bcastbench:", err)
		os.Exit(1)
	}
}

func run() error {
	clusterName := flag.String("cluster", "grisou", "cluster profile (grisou, gros)")
	np := flag.Int("np", 0, "number of processes (default: whole cluster)")
	algsFlag := flag.String("algs", "", "comma-separated algorithms (default: all six)")
	minM := flag.Int("min", 8192, "smallest message size in bytes")
	maxM := flag.Int("max", 4<<20, "largest message size in bytes")
	points := flag.Int("points", 10, "number of log-spaced sizes")
	seg := flag.Int("seg", 0, "segment size (default: the platform's 8 KB)")
	flag.Parse()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	if *np == 0 {
		*np = pr.Nodes
	}
	if *np < 2 || *np > pr.Nodes {
		return fmt.Errorf("np %d outside 2..%d", *np, pr.Nodes)
	}
	if *seg == 0 {
		*seg = pr.SegmentSize
	}
	if *minM <= 0 || *maxM < *minM || *points < 1 {
		return fmt.Errorf("invalid size sweep: min=%d max=%d points=%d", *minM, *maxM, *points)
	}

	var algs []coll.BcastAlgorithm
	if *algsFlag == "" {
		algs = coll.BcastAlgorithms()
	} else {
		for _, name := range strings.Split(*algsFlag, ",") {
			alg, err := coll.ParseBcastAlgorithm(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			algs = append(algs, alg)
		}
	}

	sizes := stats.LogSpaceBytes(*minM, *maxM, *points)
	set := experiment.DefaultSettings()

	fmt.Printf("broadcast sweep on %s, P=%d, segment=%d B\n", pr.Name, *np, *seg)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "m (bytes)")
	for _, alg := range algs {
		fmt.Fprintf(w, "\t%v (s)", alg)
	}
	fmt.Fprintln(w)
	for _, m := range sizes {
		fmt.Fprintf(w, "%d", m)
		for _, alg := range algs {
			meas, err := experiment.MeasureBcast(pr, *np, alg, m, *seg, set)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.6f", meas.Mean)
		}
		fmt.Fprintln(w)
		w.Flush()
	}
	return nil
}
