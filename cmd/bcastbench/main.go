// Command bcastbench sweeps broadcast algorithms over message sizes on a
// simulated cluster and prints the measured execution times — the raw
// experimental curves behind the paper's figures.
//
// The (size × algorithm) grid fans out over a worker pool (one fresh
// simulator per grid point, so the numbers are identical to a serial
// run), and an optional on-disk cache lets repeated sweeps over
// overlapping grids skip already-measured points.
//
// Usage:
//
//	bcastbench [-cluster grisou] [-np 90] [-algs binomial,binary] \
//	           [-min 8192] [-max 4194304] [-points 10] [-seg 8192] \
//	           [-workers 0] [-engine auto] [-cache DIR] [-v] \
//	           [-scaling 1,2,4,8] [-guidelinecheck] \
//	           [-perturb SPEC] [-perturb-random ε] [-perturb-seed N] \
//	           [-metrics metrics.json] \
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	           [-mutexprofile mutex.pprof] [-blockprofile block.pprof]
//
// -np may exceed the physical cluster: the platform is then enlarged
// synthetically (cluster.Profile.Scaled) with the calibrated link
// parameters kept, which is how the paper-scale P≈1000 grids run.
//
// -scaling replaces the measurement table with a worker-scaling curve:
// the same grid is timed once per listed worker count, sharing one
// warm RunnerPool, and the speedup relative to the first count is
// printed. Mutually exclusive with -cache (cached points would make
// every count after the first trivially fast).
//
// -engine selects how repetitions execute: auto (the default) captures
// each point's execution plan and re-times repetitions with the replay
// engine, falling back to the full scheduler when the structure is not
// plan-stable; scheduler forces the slow path; replay forbids the
// fallback. All three produce bit-identical measurements.
//
// -perturb composes a deterministic fault scenario onto the cluster
// before sweeping (package perturb's spec syntax, e.g.
// "straggler:node=0,cpu=2;link:src=0,dst=1,bw=4"); -perturb-random
// generates one from an intensity in (0,1] and -perturb-seed. -v reports
// the plan-template cache's work split (plans captured per structure
// class vs grid points rebound from a cached template, plus any rebind
// divergences), the class-aware scheduler's shape (structure-class
// groups, duplicate captures avoided by single-flight election, waits on
// in-flight captures), and how many measurements fell back from the
// replay engine to the scheduler, and why.
//
// -guidelinecheck replaces the measurement table with a performance-
// guideline verification run (package guideline's registry) on the
// configured platform: same -cluster/-np/-perturb*/-engine/-workers
// wiring, but instead of sweeping broadcast curves the tool checks the
// self-consistency laws and exits non-zero if any is violated. An
// explicit -np restricts the grid to that single communicator size.
// Mutually exclusive with -scaling, -cache and -algs.
//
// -metrics writes a JSON observability artifact of the sweep — points
// measured vs cached, per-engine repetition counts, fallback tallies,
// simulator run/transfer totals (the internal/obs snapshot schema;
// EXPERIMENTS.md documents the metric names).
//
// With -cpuprofile/-memprofile the tool records runtime/pprof profiles of
// the sweep for `go tool pprof`; the heap profile is taken at exit.
// -mutexprofile/-blockprofile additionally record contention and blocking
// profiles (full sampling for the run's duration) — the profiles behind
// the parallel-sweep scaling diagnosis in EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/guideline"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
	"mpicollperf/internal/profiling"
	"mpicollperf/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bcastbench:", err)
		os.Exit(1)
	}
}

// sweepSizes validates the size-sweep flags and returns the log-spaced
// grid. points must be at least 2: stats.LogSpace is defined for n >= 2,
// and a 1-point "sweep" would silently measure only min and drop max.
func sweepSizes(minM, maxM, points int) ([]int, error) {
	if minM <= 0 || maxM < minM {
		return nil, fmt.Errorf("invalid size sweep: min=%d max=%d", minM, maxM)
	}
	if points < 2 {
		return nil, fmt.Errorf("invalid size sweep: points=%d (need >= 2 to cover both min and max)", points)
	}
	return stats.LogSpaceBytes(minM, maxM, points), nil
}

// parseWorkerCounts parses the -scaling spec: a comma-separated list of
// positive worker counts, e.g. "1,2,4,8".
func parseWorkerCounts(spec string) ([]int, error) {
	fields := strings.Split(spec, ",")
	counts := make([]int, 0, len(fields))
	for _, f := range fields {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-scaling: bad worker count %q (want positive integers, e.g. \"1,2,4,8\")", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// runScaling times the same grid at each worker count and prints the
// speedup curve relative to the first count. One RunnerPool sized to the
// largest count is shared across all runs and warmed by an untimed
// sweep, so the curve isolates sweep concurrency from simulator
// construction. Sweep.Run clamps the effective worker count to
// GOMAXPROCS, so counts beyond the core count report that plateau
// rather than oversubscription overhead.
func runScaling(out io.Writer, pr cluster.Profile, set experiment.Settings, grid []experiment.Point, counts []int, metrics *obs.Registry) error {
	maxWorkers := 1
	for _, c := range counts {
		if c > maxWorkers {
			maxWorkers = c
		}
	}
	pool, err := experiment.NewRunnerPool(pr, maxWorkers, metrics)
	if err != nil {
		return err
	}
	warm := experiment.Sweep{Profile: pr, Settings: set, Workers: maxWorkers, Pool: pool, Metrics: metrics}
	if _, err := warm.Run(context.Background(), grid); err != nil {
		return err
	}
	secs := make([]float64, len(counts))
	for i, c := range counts {
		sw := experiment.Sweep{Profile: pr, Settings: set, Workers: c, Pool: pool, Metrics: metrics}
		start := time.Now()
		if _, err := sw.Run(context.Background(), grid); err != nil {
			return err
		}
		secs[i] = time.Since(start).Seconds()
	}
	fmt.Fprintf(out, "sweep scaling on %s, %d points, GOMAXPROCS=%d\n", pr.Name, len(grid), runtime.GOMAXPROCS(0))
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "workers\tseconds\tspeedup vs workers=%d\n", counts[0])
	for i, c := range counts {
		fmt.Fprintf(w, "%d\t%.3f\t%.2fx\n", c, secs[i], secs[0]/secs[i])
	}
	return w.Flush()
}

// runGuidelineCheck is the -guidelinecheck mode: verify the built-in
// guideline registry on the configured (possibly perturbed or scaled)
// platform. It uses the same reduced measurement settings as
// `mpicollperf verify-guidelines`, so both front-ends produce identical
// verdicts for the same platform and grid.
func runGuidelineCheck(out io.Writer, pr cluster.Profile, engine experiment.Engine, procs []int, workers int, metricsPath string) error {
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1, Engine: engine}
	h := guideline.Harness{
		Profiles: []cluster.Profile{pr},
		Procs:    procs,
		Settings: set,
		Workers:  workers,
		Metrics:  obs.NewRegistry(),
	}
	rep, err := h.Run(context.Background())
	if err != nil {
		return err
	}
	if err := rep.Render(out); err != nil {
		return err
	}
	if metricsPath != "" {
		if err := h.Metrics.WriteJSONFile(metricsPath); err != nil {
			return err
		}
	}
	if viol := rep.Violations(); len(viol) > 0 {
		return fmt.Errorf("%d of %d guideline checks violated", len(viol), len(rep.Checks))
	}
	fmt.Fprintf(out, "%d checks across %d families: all guidelines hold\n", len(rep.Checks), rep.FamilyCount())
	return nil
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("bcastbench", flag.ContinueOnError)
	clusterName := fs.String("cluster", "grisou", "cluster profile (grisou, gros)")
	np := fs.Int("np", 0, "number of processes (default: whole cluster)")
	algsFlag := fs.String("algs", "", "comma-separated algorithms (default: all six)")
	minM := fs.Int("min", 8192, "smallest message size in bytes")
	maxM := fs.Int("max", 4<<20, "largest message size in bytes")
	points := fs.Int("points", 10, "number of log-spaced sizes (>= 2)")
	seg := fs.Int("seg", 0, "segment size (default: the platform's 8 KB)")
	workers := fs.Int("workers", 0, "concurrent measurements (0 = GOMAXPROCS, 1 = serial; clamped to GOMAXPROCS)")
	scalingFlag := fs.String("scaling", "", "comma-separated worker counts: time the sweep at each and print the scaling curve instead of the measurement table")
	engineFlag := fs.String("engine", "auto", "execution engine: auto (replay with scheduler fallback), scheduler, replay")
	guidelineCheck := fs.Bool("guidelinecheck", false, "verify the performance-guideline registry on the configured platform instead of sweeping")
	perturbFlag := fs.String("perturb", "", "perturbation spec to compose onto the cluster (e.g. \"straggler:node=0,cpu=2;jitter:pareto,alpha=2\")")
	perturbRandom := fs.Float64("perturb-random", 0, "generate a random perturbation of this intensity in (0, 1]")
	perturbSeed := fs.Int64("perturb-seed", 1, "seed for -perturb-random")
	verbose := fs.Bool("v", false, "report replay-engine fallback counts after the sweep")
	metricsPath := fs.String("metrics", "", "write a JSON metrics artifact of the sweep to this file")
	cacheDir := fs.String("cache", "", "reuse measurements from this directory (created if missing)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	mutexProfile := fs.String("mutexprofile", "", "write a mutex-contention profile of the sweep to this file")
	blockProfile := fs.String("blockprofile", "", "write a blocking profile of the sweep to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := profiling.StartWith(profiling.Config{
		CPUPath:   *cpuProfile,
		MemPath:   *memProfile,
		MutexPath: *mutexProfile,
		BlockPath: *blockProfile,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	npExplicit := *np != 0
	if *np == 0 {
		*np = pr.Nodes
	}
	if *np < 2 {
		return fmt.Errorf("np %d, need >= 2", *np)
	}
	if *np > pr.Nodes {
		// Production-sized grids: enlarge the platform synthetically,
		// keeping the calibrated link parameters (cluster.Profile.Scaled).
		if pr, err = pr.Scaled(*np); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "np %d exceeds the physical cluster; sweeping the scaled platform %s\n", *np, pr.Name)
	}
	if *seg == 0 {
		*seg = pr.SegmentSize
	}
	if *perturbFlag != "" && *perturbRandom != 0 {
		return fmt.Errorf("-perturb and -perturb-random are mutually exclusive")
	}
	if *perturbFlag != "" {
		spec, err := perturb.Parse(*perturbFlag)
		if err != nil {
			return err
		}
		if err := spec.Validate(pr.Net.NICs()); err != nil {
			return err
		}
		pr = pr.Perturbed(spec)
	} else if *perturbRandom != 0 {
		if *perturbRandom < 0 || *perturbRandom > 1 {
			return fmt.Errorf("-perturb-random %g outside (0, 1]", *perturbRandom)
		}
		pr = pr.Perturbed(perturb.Random(*perturbSeed, *perturbRandom, pr.Net.NICs()))
	}
	sizes, err := sweepSizes(*minM, *maxM, *points)
	if err != nil {
		return err
	}

	var algs []coll.BcastAlgorithm
	if *algsFlag == "" {
		algs = coll.BcastAlgorithms()
	} else {
		for _, name := range strings.Split(*algsFlag, ",") {
			alg, err := coll.ParseBcastAlgorithm(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			algs = append(algs, alg)
		}
	}

	engine, err := experiment.ParseEngine(*engineFlag)
	if err != nil {
		return err
	}
	set := experiment.DefaultSettings()
	set.Engine = engine

	if *guidelineCheck {
		if *scalingFlag != "" || *cacheDir != "" || *algsFlag != "" {
			return fmt.Errorf("-guidelinecheck is mutually exclusive with -scaling, -cache and -algs")
		}
		var procs []int
		if npExplicit {
			procs = []int{*np}
		}
		return runGuidelineCheck(out, pr, engine, procs, *workers, *metricsPath)
	}

	sw := experiment.Sweep{
		Profile:  pr,
		Settings: set,
		Workers:  *workers,
		Progress: func(done, total int, r experiment.Result) {
			fmt.Fprintf(os.Stderr, "\rmeasured %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	if *cacheDir != "" {
		if sw.Cache, err = experiment.NewDiskCache(*cacheDir); err != nil {
			return err
		}
	}
	if *metricsPath != "" || *verbose {
		// -v reads the plan-template counters back out of the registry, so
		// it needs one even without a -metrics artifact.
		sw.Metrics = obs.NewRegistry()
	}

	grid := experiment.BcastGrid(*np, algs, sizes, *seg)
	if *scalingFlag != "" {
		if *cacheDir != "" {
			return fmt.Errorf("-scaling and -cache are mutually exclusive: cached points would make every count after the first trivially fast")
		}
		counts, err := parseWorkerCounts(*scalingFlag)
		if err != nil {
			return err
		}
		if err := runScaling(out, pr, set, grid, counts, sw.Metrics); err != nil {
			return err
		}
		if *metricsPath != "" {
			return sw.Metrics.WriteJSONFile(*metricsPath)
		}
		return nil
	}
	results, err := sw.Run(context.Background(), grid)
	if err != nil {
		return err
	}
	if *metricsPath != "" {
		if err := sw.Metrics.WriteJSONFile(*metricsPath); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "broadcast sweep on %s, P=%d, segment=%d B\n", pr.Name, *np, *seg)
	if *verbose {
		captured := sw.Metrics.Counter("experiment_plan_templates_total").Value()
		rebound := sw.Metrics.Counter("experiment_plan_rebinds_total").Value()
		diverged := sw.Metrics.Counter(obs.Name("experiment_fallbacks_total", "reason", "rebind-divergence")).Value()
		fmt.Fprintf(out, "plan templates: %d captured, %d points rebound, %d rebind divergences\n", captured, rebound, diverged)
		classes := int64(sw.Metrics.Gauge("experiment_sweep_class_groups").Value())
		dedup := sw.Metrics.Counter("experiment_sweep_capture_dedup_total").Value()
		wait := sw.Metrics.Histogram("experiment_sweep_singleflight_wait_seconds")
		line := fmt.Sprintf("class scheduling: %d class groups, %d duplicate captures avoided", classes, dedup)
		if n := wait.Count(); n > 0 {
			line += fmt.Sprintf(", %d single-flight waits (mean %.1f ms)", n, wait.Mean()*1e3)
		}
		fmt.Fprintln(out, line)
		if counts := experiment.CountFallbacks(results); len(counts) == 0 {
			fmt.Fprintln(out, "engine fallbacks: none")
		} else {
			reasons := make([]string, 0, len(counts))
			for r := range counts {
				reasons = append(reasons, string(r))
			}
			sort.Strings(reasons)
			parts := make([]string, len(reasons))
			for i, r := range reasons {
				parts[i] = fmt.Sprintf("%s×%d", r, counts[experiment.FallbackReason(r)])
			}
			fmt.Fprintf(out, "engine fallbacks: %s\n", strings.Join(parts, ", "))
		}
	}
	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "m (bytes)")
	for _, alg := range algs {
		fmt.Fprintf(w, "\t%v (s)", alg)
	}
	fmt.Fprintln(w)
	// BcastGrid is sizes-major: results[i*len(algs)+j] is (sizes[i], algs[j]).
	for i, m := range sizes {
		fmt.Fprintf(w, "%d", m)
		for j := range algs {
			fmt.Fprintf(w, "\t%.6f", results[i*len(algs)+j].Meas.Mean)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}
