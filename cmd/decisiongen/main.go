// Command decisiongen compiles a calibration (from fitparams) into a
// static decision table — the artifact an MPI library would actually ship:
// Open MPI's coll_tuned_decision_fixed.c regenerated from models instead
// of hand tuning.
//
// Usage:
//
//	decisiongen -cluster grisou [-cal grisou.json] [-maxprocs 90] \
//	            [-json table.json] [-gofunc selectBcastGrisou] \
//	            [-workers 0] [-cache DIR]
//
// Without -cal the calibration runs here, as a parallel sweep; pointing
// -cache at the directory a previous fitparams -cache run filled makes
// that calibration a pure cache replay with no measurement at all.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
	"mpicollperf/internal/decision"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "decisiongen:", err)
		os.Exit(1)
	}
}

func run() error {
	clusterName := flag.String("cluster", "grisou", "cluster profile (grisou, gros)")
	calPath := flag.String("cal", "", "calibration JSON from fitparams (default: calibrate now)")
	maxProcs := flag.Int("maxprocs", 0, "largest communicator size (default: the platform)")
	jsonPath := flag.String("json", "", "write the table as JSON to this path")
	goFunc := flag.String("gofunc", "", "emit the table as a Go function with this name")
	workers := flag.Int("workers", 0, "concurrent calibration measurements (0 = GOMAXPROCS, 1 = serial)")
	cacheDir := flag.String("cache", "", "reuse calibration measurements from this directory")
	flag.Parse()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	if *maxProcs == 0 {
		*maxProcs = pr.Nodes
	}

	var sel *core.Selector
	if *calPath != "" {
		sel, err = core.LoadModels(pr, *calPath)
	} else {
		fmt.Fprintln(os.Stderr, "(no -cal file: running calibration, this takes a moment)")
		cfg := estimate.AlphaBetaConfig{
			Settings: experiment.DefaultSettings(),
			Workers:  *workers,
		}
		if *cacheDir != "" {
			if cfg.Cache, err = experiment.NewDiskCache(*cacheDir); err != nil {
				return err
			}
		}
		sel, err = core.Calibrate(pr, cfg)
	}
	if err != nil {
		return err
	}

	tab, err := decision.Compile(sel.Models, decision.CompileConfig{MaxProcs: *maxProcs})
	if err != nil {
		return err
	}

	if *jsonPath != "" {
		if err := tab.Save(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("table written to %s\n", *jsonPath)
	}
	if *goFunc != "" {
		fmt.Println(tab.GoSource(*goFunc))
	}
	if *jsonPath == "" && *goFunc == "" {
		// Human-readable dump.
		fmt.Printf("compiled decision table for %s (segment %d B)\n", tab.Cluster, tab.SegSize)
		for _, row := range tab.Rows {
			fmt.Printf("  P <= %d:\n", row.Procs)
			for i, rule := range row.Rules {
				if i == len(row.Rules)-1 {
					fmt.Printf("    otherwise       -> %s\n", rule.Alg)
				} else {
					fmt.Printf("    m <= %-10d -> %s\n", rule.MaxBytes, rule.Alg)
				}
			}
		}
	}
	return nil
}
