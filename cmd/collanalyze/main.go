// Command collanalyze runs one broadcast on the simulated cluster with
// transfer tracing enabled and explains where the time went: per-port
// bottlenecks, a send-port activity timeline, and the reconstructed
// critical path. It is the companion to the analytical models — when two
// algorithms are close, the trace shows which phase separates them.
//
// Usage:
//
//	collanalyze [-cluster grisou] [-np 16] [-alg binomial] [-m 1048576] [-seg 8192]
package main

import (
	"flag"
	"fmt"
	"os"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/coll"
	"mpicollperf/internal/mpi"
	"mpicollperf/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collanalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	clusterName := flag.String("cluster", "grisou", "cluster profile (grisou, gros)")
	np := flag.Int("np", 16, "number of processes")
	algName := flag.String("alg", "binomial", "broadcast algorithm")
	m := flag.Int("m", 1<<20, "message size in bytes")
	seg := flag.Int("seg", 0, "segment size (default: platform's 8 KB)")
	width := flag.Int("width", 72, "timeline width in characters")
	flag.Parse()

	pr, err := cluster.ByName(*clusterName)
	if err != nil {
		return err
	}
	if *np < 2 || *np > pr.Nodes {
		return fmt.Errorf("np %d outside 2..%d", *np, pr.Nodes)
	}
	if *seg == 0 {
		*seg = pr.SegmentSize
	}
	alg, err := coll.ParseBcastAlgorithm(*algName)
	if err != nil {
		return err
	}
	// Noise off: a single traced run should be the platonic execution.
	pr.Net.NoiseAmplitude = 0
	net, err := pr.Network()
	if err != nil {
		return err
	}
	col := trace.Attach(net)
	res, err := mpi.RunOn(net, *np, func(p *mpi.Proc) error {
		coll.Bcast(p, alg, 0, coll.Synthetic(*m), *seg)
		return nil
	}, mpi.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("%v broadcast of %d B over %d ranks on %s (segment %d B)\n",
		alg, *m, *np, pr.Name, *seg)
	fmt.Printf("completion: %.6f s\n\n", res.MakeSpan)
	fmt.Print(col.Analyze().Render())
	fmt.Println()
	fmt.Print(col.Timeline(*width))
	fmt.Println()
	path := col.CriticalPath()
	fmt.Printf("critical path (%d hops):\n", len(path))
	for _, tr := range path {
		fmt.Printf("  %3d -> %3d  %7d B  issued %.6f  delivered %.6f\n",
			tr.Src, tr.Dst, tr.Bytes, tr.Issued, tr.Delivered)
	}
	return nil
}
