package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildConfigFullScale(t *testing.T) {
	cfg, err := buildConfig("both", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.profiles) != 2 {
		t.Fatalf("profiles = %d", len(cfg.profiles))
	}
	if len(cfg.sizes) != 10 || cfg.sizes[0] != 8192 || cfg.sizes[9] != 4<<20 {
		t.Fatalf("paper size grid wrong: %v", cfg.sizes)
	}
	// The paper's evaluation parameters.
	if cfg.table3P["grisou"] != 90 || cfg.table3P["gros"] != 100 {
		t.Fatalf("table3 process counts: %v", cfg.table3P)
	}
	if cfg.estProcs["grisou"] != 40 || cfg.estProcs["gros"] != 124 {
		t.Fatalf("estimation process counts: %v", cfg.estProcs)
	}
	if got := cfg.fig5Ps["grisou"]; len(got) != 3 || got[2] != 90 {
		t.Fatalf("fig5 grisou P values: %v", got)
	}
}

func TestBuildConfigQuickAndSingleCluster(t *testing.T) {
	cfg, err := buildConfig("gros", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.profiles) != 1 || cfg.profiles[0].Name != "gros" {
		t.Fatalf("profiles = %+v", cfg.profiles)
	}
	if cfg.profiles[0].Nodes != 24 {
		t.Fatalf("quick mode should shrink the cluster, got %d nodes", cfg.profiles[0].Nodes)
	}
	if _, err := buildConfig("fugaku", false); err == nil {
		t.Fatal("unknown cluster should fail")
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args should fail")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand should fail")
	}
	if err := run([]string{"reproduce", "-quick", "-cluster", "grisou", "nosuch"}); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func TestRunQuickTable1WritesCSV(t *testing.T) {
	dir := t.TempDir()
	// Silence stdout noise by not capturing; the assertion is the CSV file.
	err := run([]string{"reproduce", "-quick", "-cluster", "grisou", "-out", dir, "table1"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "cluster,P,gamma\n") || !strings.Contains(text, "grisou,7,") {
		t.Fatalf("table1 csv:\n%s", text)
	}
}
