package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/guideline"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/perturb"
)

// runVerifyGuidelines is the `mpicollperf verify-guidelines` subcommand:
// it fans the built-in guideline registry out over a platform ×
// perturbation × (P, m) grid, renders the per-guideline summary, writes
// the structured JSON artifact, and fails (non-zero exit) when any
// guideline is violated — the shape `make guidelines` gates CI on.
func runVerifyGuidelines(args []string) error {
	fs := flag.NewFlagSet("verify-guidelines", flag.ContinueOnError)
	clusterFlag := fs.String("cluster", "both", "grisou, gros or both")
	quick := fs.Bool("quick", false, "reduced grid for a fast smoke gate")
	procsFlag := fs.String("procs", "", "comma-separated communicator sizes (default 4,8,16)")
	sizesFlag := fs.String("sizes", "", "comma-separated message sizes in bytes (default 1024,16384,131072,1048576)")
	perturbations := fs.Int("perturbations", 2, "random perturbed platforms per cluster (deterministic from -seed)")
	perturbFlag := fs.String("perturb", "", "additional explicit perturbation spec to compose onto every cluster")
	seed := fs.Int64("seed", 1, "seed for the random perturbations")
	intensity := fs.Float64("intensity", 0.5, "intensity of the random perturbations in (0, 1]")
	engineFlag := fs.String("engine", "auto", "execution engine: auto, scheduler, replay")
	workers := fs.Int("workers", 0, "concurrent checks (0 = GOMAXPROCS, 1 = serial)")
	outPath := fs.String("out", "results/guidelines.json", "path of the JSON artifact (empty = skip)")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var profiles []cluster.Profile
	names := []string{"grisou", "gros"}
	if *clusterFlag != "both" {
		names = []string{*clusterFlag}
	}
	for _, name := range names {
		pr, err := cluster.ByName(name)
		if err != nil {
			return err
		}
		if pr.Nodes > 16 {
			if pr, err = pr.WithNodes(16); err != nil {
				return err
			}
		}
		profiles = append(profiles, pr)
	}

	engine, err := experiment.ParseEngine(*engineFlag)
	if err != nil {
		return err
	}
	set := experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1, Engine: engine}

	h := guideline.Harness{
		Profiles:            profiles,
		RandomPerturbations: *perturbations,
		Seed:                *seed,
		Intensity:           *intensity,
		Settings:            set,
		Workers:             *workers,
		Metrics:             obs.NewRegistry(),
	}
	if *procsFlag != "" {
		if h.Procs, err = parseIntList(*procsFlag); err != nil {
			return fmt.Errorf("-procs: %w", err)
		}
	}
	if *sizesFlag != "" {
		if h.Sizes, err = parseIntList(*sizesFlag); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
	}
	if *perturbFlag != "" {
		spec, err := perturb.Parse(*perturbFlag)
		if err != nil {
			return err
		}
		h.Perturbations = append(h.Perturbations, spec)
	}
	if *quick {
		h.Profiles = profiles[:1]
		h.RandomPerturbations = 1
		if h.Procs == nil {
			h.Procs = []int{4, 8}
		}
		if h.Sizes == nil {
			h.Sizes = []int{1 << 10, 64 << 10}
		}
	}

	rep, err := h.Run(context.Background())
	if err != nil {
		return err
	}
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}
	if *outPath != "" {
		if err := rep.WriteJSON(*outPath); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *outPath)
	}
	if *metricsPath != "" {
		if err := h.Metrics.WriteJSONFile(*metricsPath); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", *metricsPath)
	}
	if viol := rep.Violations(); len(viol) > 0 {
		return fmt.Errorf("%d of %d guideline checks violated", len(viol), len(rep.Checks))
	}
	fmt.Printf("%d checks across %d families: all guidelines hold\n", len(rep.Checks), rep.FamilyCount())
	return nil
}

func parseIntList(spec string) ([]int, error) {
	fields := strings.Split(spec, ",")
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}
