// Command mpicollperf regenerates the paper's evaluation artifacts on the
// simulated clusters.
//
// Usage:
//
//	mpicollperf reproduce [flags] {fig1|table1|table2|fig5|table3|robustness|metrics|all}
//
// Flags:
//
//	-cluster grisou|gros|both   platform(s) to run on (default both)
//	-quick                      reduced scale (fewer procs/sizes) for a
//	                            fast smoke run
//	-csv                        also print CSV blocks after each artifact
//	-out DIR                    write per-artifact CSV files into DIR
//
// The full-scale run uses the paper's parameters: up to 90 (Grisou) / 124
// (Gros) processes, 10 message sizes from 8 KB to 4 MB, estimation with 40
// (Grisou) / 124 (Gros) processes, 95%/2.5% measurement methodology.
//
// The robustness target goes beyond the paper: it re-scores the
// model-based and Open MPI fixed selectors against the oracle on
// deterministically perturbed variants of each cluster (random stragglers,
// degraded links, and heavy-tailed jitter of increasing intensity; see
// package perturb), reporting each selector's penalty as the platform
// degrades.
//
// The metrics target runs one calibration per cluster with an
// observability registry attached (see internal/obs) and emits the
// collected counters, gauges, and span histograms — sweep points measured
// vs cached, per-engine repetition counts, simulator run/transfer totals,
// class-aware scheduler statistics (structure-class groups, duplicate
// captures avoided, single-flight wait times), per-algorithm fit
// statistics, and the guideline-verification counters
// (guideline_checks_total, guideline_violations_total, per-guideline
// ratio histograms) from a small invariant check. The calibration runs
// twice against a shared measurement cache so the cache-hit counters are
// exercised too.
// The artifact prints as a human-readable table; -csv adds the JSON
// snapshot, and -out DIR writes it to DIR/metrics_<cluster>.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mpicollperf/internal/cluster"
	"mpicollperf/internal/core"
	"mpicollperf/internal/estimate"
	"mpicollperf/internal/experiment"
	"mpicollperf/internal/guideline"
	"mpicollperf/internal/obs"
	"mpicollperf/internal/selection"
	"mpicollperf/internal/stats"
	"mpicollperf/internal/tables"
)

type runConfig struct {
	profiles []cluster.Profile
	sizes    []int
	// fig1P, table3P and fig5Ps map cluster name to process counts.
	fig1P   map[string]int
	table3P map[string]int
	fig5Ps  map[string][]int
	// estimation process counts (paper: 40 on Grisou, 124 on Gros).
	estProcs map[string]int
	settings experiment.Settings
	csv      bool
	outDir   string
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mpicollperf:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mpicollperf {reproduce|verify-guidelines|serve} [flags] ...")
	}
	if args[0] == "verify-guidelines" {
		return runVerifyGuidelines(args[1:])
	}
	if args[0] == "serve" {
		return runServe(args[1:], os.Stdout)
	}
	if args[0] != "reproduce" {
		return fmt.Errorf("usage: mpicollperf reproduce [flags] {fig1|table1|table2|fig5|table3|robustness|metrics|all}\n       mpicollperf verify-guidelines [flags]\n       mpicollperf serve {submit|status|wait|list|cancel|select} [flags]")
	}
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	clusterFlag := fs.String("cluster", "both", "grisou, gros or both")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	csv := fs.Bool("csv", false, "print CSV blocks after each artifact")
	outDir := fs.String("out", "", "directory for per-artifact CSV files")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	targets := fs.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}

	cfg, err := buildConfig(*clusterFlag, *quick)
	if err != nil {
		return err
	}
	cfg.csv = *csv
	cfg.outDir = *outDir
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
	}

	for _, target := range targets {
		start := time.Now()
		var err error
		switch target {
		case "fig1":
			err = runFig1(cfg)
		case "table1":
			err = runTable1(cfg)
		case "table2":
			err = runTable2(cfg)
		case "fig5":
			err = runFig5Table3(cfg, true, false)
		case "table3":
			err = runFig5Table3(cfg, false, true)
		case "ext":
			err = runExt(cfg)
		case "robustness":
			err = runRobustness(cfg)
		case "metrics":
			err = runMetrics(cfg)
		case "all":
			if err = runFig1(cfg); err == nil {
				if err = runTable1(cfg); err == nil {
					err = runFig5Table3(cfg, true, true) // includes table2
				}
			}
		default:
			err = fmt.Errorf("unknown target %q", target)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Printf("[%s done in %v]\n\n", target, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func buildConfig(clusterFlag string, quick bool) (runConfig, error) {
	var profiles []cluster.Profile
	switch clusterFlag {
	case "both":
		profiles = cluster.All()
	default:
		pr, err := cluster.ByName(clusterFlag)
		if err != nil {
			return runConfig{}, err
		}
		profiles = []cluster.Profile{pr}
	}
	cfg := runConfig{
		profiles: profiles,
		sizes:    tables.PaperSizes(),
		fig1P:    map[string]int{"grisou": 90, "gros": 124},
		table3P:  map[string]int{"grisou": 90, "gros": 100},
		fig5Ps:   map[string][]int{"grisou": {50, 80, 90}, "gros": {80, 100, 124}},
		estProcs: map[string]int{"grisou": 40, "gros": 124},
		settings: experiment.DefaultSettings(),
	}
	if quick {
		for i, pr := range cfg.profiles {
			small, err := pr.WithNodes(24)
			if err != nil {
				return runConfig{}, err
			}
			cfg.profiles[i] = small
		}
		cfg.sizes = stats.LogSpaceBytes(8192, 1<<20, 5)
		cfg.fig1P = map[string]int{"grisou": 24, "gros": 24}
		cfg.table3P = map[string]int{"grisou": 24, "gros": 24}
		cfg.fig5Ps = map[string][]int{"grisou": {12, 24}, "gros": {12, 24}}
		cfg.estProcs = map[string]int{"grisou": 12, "gros": 12}
		cfg.settings = experiment.Settings{
			Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 30, Warmup: 1,
		}
	}
	return cfg, nil
}

// emit prints an artifact and optionally writes/prints its CSV.
func emit(cfg runConfig, name, text, csv string) error {
	fmt.Print(text)
	fmt.Println()
	if cfg.csv {
		fmt.Println(csv)
	}
	if cfg.outDir != "" {
		path := filepath.Join(cfg.outDir, name+".csv")
		if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
			return err
		}
		fmt.Printf("(wrote %s)\n", path)
	}
	return nil
}

func runFig1(cfg runConfig) error {
	for _, pr := range cfg.profiles {
		p := cfg.fig1P[pr.Name]
		if p > pr.Nodes {
			p = pr.Nodes
		}
		fig, err := tables.GenerateFig1(pr, p, cfg.sizes, cfg.settings)
		if err != nil {
			return err
		}
		if err := emit(cfg, fmt.Sprintf("fig1_%s", pr.Name), fig.Render(), fig.CSV()); err != nil {
			return err
		}
		fmt.Println(fig.PlotFig1(64, 16))
	}
	return nil
}

// runExt generates the beyond-broadcast extension table: model-based
// selection for allgather/allreduce/alltoall/reduce/gather/scatter/
// reduce-scatter (the paper's future work).
func runExt(cfg runConfig) error {
	for _, pr := range cfg.profiles {
		p := cfg.estProcs[pr.Name]
		if p == 0 || p > pr.Nodes {
			p = pr.Nodes / 2
		}
		sizes := []int{4096, 65536, 1 << 20}
		tab, err := tables.GenerateExtTable(pr, p, sizes, cfg.settings)
		if err != nil {
			return err
		}
		if err := emit(cfg, fmt.Sprintf("ext_%s", pr.Name), tab.Render(), tab.CSV()); err != nil {
			return err
		}
		fmt.Printf("worst extension degradation: %.1f%%\n\n", tab.MaxDegradation())
	}
	return nil
}

// runRobustness generates the robustness artifact: models are fitted on
// the quiet cluster (exactly as for fig5/table3), then both selectors are
// scored against the oracle on deterministically perturbed variants of
// increasing intensity. The whole artifact is reproducible: the
// perturbation specs derive from a fixed seed.
func runRobustness(cfg runConfig) error {
	tab2, err := tables.GenerateTable2(cfg.profiles, cfg.estProcs, cfg.settings)
	if err != nil {
		return err
	}
	for _, pr := range cfg.profiles {
		sel := selection.ModelBased{Models: tab2.Models[pr.Name]}
		p := cfg.table3P[pr.Name]
		if p > pr.Nodes {
			p = pr.Nodes
		}
		rcfg := selection.RobustnessConfig{
			P:           p,
			Sizes:       cfg.sizes,
			Intensities: []float64{0, 0.25, 0.5, 0.75, 1},
			Seed:        1,
			Settings:    cfg.settings,
		}
		rep, err := selection.Robustness(context.Background(), pr, sel, rcfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("robustness_%s_p%d", pr.Name, p)
		if err := emit(cfg, name, rep.Render(), rep.CSV()); err != nil {
			return err
		}
	}
	return nil
}

// runMetrics generates the observability artifact: one calibration per
// cluster with a metrics registry attached. The calibration runs twice
// against a shared in-memory measurement cache, so the artifact shows both
// the cold path (points measured, engine repetitions, simulator totals,
// fit statistics) and the warm path (points served from cache). A small
// guideline-verification pass over the same registry populates the
// guideline_checks_total / guideline_violations_total counters and the
// per-guideline ratio histograms alongside.
func runMetrics(cfg runConfig) error {
	for _, pr := range cfg.profiles {
		p := cfg.estProcs[pr.Name]
		if p == 0 || p > pr.Nodes {
			p = pr.Nodes / 2
		}
		reg := obs.NewRegistry()
		acfg := estimate.AlphaBetaConfig{
			Procs:    p,
			Settings: cfg.settings,
			Cache:    experiment.NewCache(),
			Metrics:  reg,
		}
		for pass := 0; pass < 2; pass++ {
			if _, err := core.Calibrate(pr, acfg); err != nil {
				return err
			}
		}
		gh := guideline.Harness{
			Profiles:   []cluster.Profile{pr},
			Guidelines: guideline.Invariant(),
			Procs:      []int{4},
			Sizes:      []int{8 << 10},
			Settings:   experiment.Settings{Confidence: 0.95, Precision: 0.025, MinReps: 3, MaxReps: 10, Warmup: 1, Engine: cfg.settings.Engine},
			Metrics:    reg,
		}
		if _, err := gh.Run(context.Background()); err != nil {
			return err
		}
		fmt.Printf("observability metrics: calibration of %s (P=%d, two passes over a shared cache) plus a guideline check\n\n", pr.Name, p)
		if err := reg.WriteTable(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if cfg.csv {
			if err := reg.WriteJSON(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if cfg.outDir != "" {
			path := filepath.Join(cfg.outDir, fmt.Sprintf("metrics_%s.json", pr.Name))
			if err := reg.WriteJSONFile(path); err != nil {
				return err
			}
			fmt.Printf("(wrote %s)\n", path)
		}
	}
	return nil
}

func runTable1(cfg runConfig) error {
	tab, err := tables.GenerateTable1(cfg.profiles, cfg.settings)
	if err != nil {
		return err
	}
	return emit(cfg, "table1", tab.Render(), tab.CSV())
}

func runTable2(cfg runConfig) error {
	tab, err := tables.GenerateTable2(cfg.profiles, cfg.estProcs, cfg.settings)
	if err != nil {
		return err
	}
	return emit(cfg, "table2", tab.Render(), tab.CSV())
}

// runFig5Table3 estimates the models once per cluster (printing Table 2 on
// the way) and then generates the requested selection artifacts.
func runFig5Table3(cfg runConfig, fig5, table3 bool) error {
	tab2, err := tables.GenerateTable2(cfg.profiles, cfg.estProcs, cfg.settings)
	if err != nil {
		return err
	}
	if err := emit(cfg, "table2", tab2.Render(), tab2.CSV()); err != nil {
		return err
	}
	for _, pr := range cfg.profiles {
		sel := selection.ModelBased{Models: tab2.Models[pr.Name]}
		if fig5 {
			for _, p := range cfg.fig5Ps[pr.Name] {
				if p > pr.Nodes {
					continue
				}
				panel, err := tables.GenerateFig5Panel(pr, sel, p, cfg.sizes, cfg.settings)
				if err != nil {
					return err
				}
				name := fmt.Sprintf("fig5_%s_p%d", pr.Name, p)
				if err := emit(cfg, name, panel.Render(), panel.CSV()); err != nil {
					return err
				}
				fmt.Println(panel.PlotFig5(64, 16))
			}
		}
		if table3 {
			p := cfg.table3P[pr.Name]
			if p > pr.Nodes {
				p = pr.Nodes
			}
			tab3, err := tables.GenerateTable3(pr, sel, p, cfg.sizes, cfg.settings)
			if err != nil {
				return err
			}
			name := fmt.Sprintf("table3_%s_p%d", pr.Name, p)
			if err := emit(cfg, name, tab3.Render(), tab3.CSV()); err != nil {
				return err
			}
			fmt.Printf("worst model-based degradation: %.1f%%\n\n", tab3.MaxModelDegradation())
		}
	}
	return nil
}
