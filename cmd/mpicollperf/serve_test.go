package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"mpicollperf/internal/obs"
	"mpicollperf/internal/serve"
)

// startDaemon spins an in-process daemon on a real HTTP listener.
func startDaemon(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir(), Workers: 2, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.URL
}

// TestServeClientCycle drives the full client loop against a live
// daemon: submit → wait → status → select → list.
func TestServeClientCycle(t *testing.T) {
	url := startDaemon(t)

	var idBuf strings.Builder
	err := runServe([]string{"submit", "-server", url, "-profile", "grisou",
		"-nodes", "16", "-procs", "8", "-sizes", "8192,65536,524288",
		"-ops", "gather", "-fast", "-id-only"}, &idBuf)
	if err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(idBuf.String())
	if !strings.HasPrefix(id, "cal-") {
		t.Fatalf("-id-only printed %q", id)
	}

	var waitBuf strings.Builder
	if err := runServe([]string{"wait", "-server", url, "-id", id, "-timeout", "2m"}, &waitBuf); err != nil {
		t.Fatalf("wait: %v (%s)", err, waitBuf.String())
	}
	if s := waitBuf.String(); !strings.Contains(s, "done") || !strings.Contains(s, "digest=sha256-") {
		t.Fatalf("wait output %q", s)
	}

	var statusBuf strings.Builder
	if err := runServe([]string{"status", "-server", url, "-id", id}, &statusBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statusBuf.String(), id+" done") {
		t.Fatalf("status output %q", statusBuf.String())
	}

	for _, sel := range [][]string{
		{"select", "-server", url, "-profile", "grisou", "-p", "16", "-m", "1048576"},
		{"select", "-server", url, "-profile", "grisou", "-op", "gather", "-p", "16", "-m", "8192"},
	} {
		var selBuf strings.Builder
		if err := runServe(sel, &selBuf); err != nil {
			t.Fatalf("%v: %v", sel, err)
		}
		if s := selBuf.String(); !strings.Contains(s, "/") || !strings.Contains(s, "predicted=") {
			t.Fatalf("select output %q", s)
		}
	}

	var listBuf strings.Builder
	if err := runServe([]string{"list", "-server", url}, &listBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listBuf.String(), id) {
		t.Fatalf("list output %q", listBuf.String())
	}
}

func TestServeClientErrors(t *testing.T) {
	url := startDaemon(t)
	var out strings.Builder
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"submit", "-server", url}, // missing -profile
		{"submit", "-server", url, "-profile", "g", "-sizes", "x"},           // bad sizes
		{"status", "-server", url},                                           // missing -id
		{"status", "-server", url, "-id", "cal-999"},                         // unknown job
		{"cancel", "-server", url, "-id", "cal-999"},                         // unknown job
		{"wait", "-server", url},                                             // missing -id
		{"select", "-server", url, "-profile", "grisou"},                     // missing -p/-m
		{"select", "-server", url, "-profile", "nope", "-p", "4", "-m", "1"}, // unknown profile
		{"submit", "-server", url, "-profile", "summit"},                     // daemon-side 404
	}
	for _, args := range cases {
		if err := runServe(args, &out); err == nil {
			t.Fatalf("runServe(%v) should fail", args)
		}
	}
	// Daemon errors surface their wire code.
	err := runServe([]string{"select", "-server", url, "-profile", "grisou", "-p", "4", "-m", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not_calibrated") {
		t.Fatalf("uncalibrated select error = %v, want not_calibrated code", err)
	}

	// An empty daemon lists no jobs.
	var listBuf strings.Builder
	if err := runServe([]string{"list", "-server", url}, &listBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listBuf.String(), "no calibration jobs") {
		t.Fatalf("list output %q", listBuf.String())
	}
}
