package main

// The serve subcommand is a thin client for the mpicollperfd daemon:
// it submits and tracks calibration jobs and runs selection queries
// over the versioned wire API, so the full daemon loop
// (submit → wait → select → cancel) can be driven from scripts — the
// servecheck make target does exactly that.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mpicollperf/internal/serve/wire"
)

const serveUsage = "usage: mpicollperf serve {submit|status|wait|list|cancel|select} -server URL [flags]"

// runServe dispatches the serve client subcommands.
func runServe(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", serveUsage)
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("serve "+sub, flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:7077", "daemon base URL")
	switch sub {
	case "submit":
		profile := fs.String("profile", "", "platform profile to calibrate (required)")
		nodes := fs.Int("nodes", 0, "restrict the platform to this many nodes")
		procs := fs.Int("procs", 0, "experiment process count (0 = half the platform)")
		sizes := fs.String("sizes", "", "comma-separated message sizes (empty = paper grid)")
		ops := fs.String("ops", "", "comma-separated extended collective families to calibrate too")
		fast := fs.Bool("fast", false, "quick low-repetition measurement settings")
		idOnly := fs.Bool("id-only", false, "print only the job ID (for scripting)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *profile == "" {
			return fmt.Errorf("serve submit: -profile is required")
		}
		req := wire.CalibrationRequest{
			Version: wire.Version, Profile: *profile, Nodes: *nodes, Procs: *procs, Fast: *fast,
		}
		var err error
		if req.Sizes, err = parseSizes(*sizes); err != nil {
			return err
		}
		if *ops != "" {
			req.Ops = strings.Split(*ops, ",")
		}
		var job wire.Job
		if err := serveCall(http.MethodPost, *server+"/v1/calibrations", &req, &job); err != nil {
			return err
		}
		if *idOnly {
			fmt.Fprintln(out, job.ID)
			return nil
		}
		fmt.Fprintf(out, "submitted %s\n", formatJob(job))
		return nil

	case "status", "cancel":
		id := fs.String("id", "", "job ID (required)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("serve %s: -id is required", sub)
		}
		method := http.MethodGet
		if sub == "cancel" {
			method = http.MethodDelete
		}
		var job wire.Job
		if err := serveCall(method, *server+"/v1/calibrations/"+*id, nil, &job); err != nil {
			return err
		}
		fmt.Fprintln(out, formatJob(job))
		return nil

	case "wait":
		id := fs.String("id", "", "job ID (required)")
		want := fs.String("want", string(wire.JobDone), "terminal state to wait for")
		timeout := fs.Duration("timeout", 10*time.Minute, "give up after this long")
		poll := fs.Duration("poll", 200*time.Millisecond, "poll interval")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *id == "" {
			return fmt.Errorf("serve wait: -id is required")
		}
		deadline := time.Now().Add(*timeout)
		for {
			var job wire.Job
			if err := serveCall(http.MethodGet, *server+"/v1/calibrations/"+*id, nil, &job); err != nil {
				return err
			}
			switch job.State {
			case wire.JobDone, wire.JobFailed, wire.JobCancelled:
				fmt.Fprintln(out, formatJob(job))
				if string(job.State) != *want {
					return fmt.Errorf("job %s ended %s, wanted %s", job.ID, job.State, *want)
				}
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s still %s after %v", job.ID, job.State, *timeout)
			}
			time.Sleep(*poll)
		}

	case "list":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var list wire.JobList
		if err := serveCall(http.MethodGet, *server+"/v1/calibrations", nil, &list); err != nil {
			return err
		}
		if len(list.Jobs) == 0 {
			fmt.Fprintln(out, "no calibration jobs")
			return nil
		}
		for _, job := range list.Jobs {
			fmt.Fprintln(out, formatJob(job))
		}
		return nil

	case "select":
		profile := fs.String("profile", "", "profile name or calibration digest (required)")
		op := fs.String("op", "", "collective family (default bcast)")
		p := fs.Int("p", 0, "communicator size (required)")
		m := fs.Int("m", 0, "message size in bytes (required)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *profile == "" || *p < 1 || *m < 0 {
			return fmt.Errorf("serve select: need -profile, -p >= 1, -m >= 0")
		}
		req := wire.SelectRequest{Version: wire.Version, Profile: *profile, Op: *op, P: *p, M: *m}
		var resp wire.SelectResponse
		if err := serveCall(http.MethodPost, *server+"/v1/select", &req, &resp); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s seg=%d predicted=%.3es (profile %s, P=%d, m=%d)\n",
			resp.Algorithm, resp.SegSize, resp.Predicted, resp.Profile, *p, *m)
		return nil

	default:
		return fmt.Errorf("serve: unknown subcommand %q\n%s", sub, serveUsage)
	}
}

// serveCall performs one wire API call, decoding success into v and
// daemon errors into a readable failure.
func serveCall(method, url string, body, v any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e wire.Error
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return fmt.Errorf("daemon: %s: %s", e.Code, e.Message)
		}
		return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, v)
}

func formatJob(j wire.Job) string {
	s := fmt.Sprintf("%s %s profile=%s progress=%d/%d", j.ID, j.State, j.Profile, j.Done, j.Total)
	if j.Digest != "" {
		s += " digest=" + j.Digest
	}
	if j.Error != "" {
		s += " error=" + strconv.Quote(j.Error)
	}
	return s
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
